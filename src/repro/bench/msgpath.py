"""Message-path microbenchmark CLI: ``python -m repro.bench.msgpath``.

Measures messages/second through the HerQules message path at three
levels, writing ``BENCH_msgpath.json`` next to ``BENCH_pipeline.json``:

* ``channel:<primitive>`` — raw transport throughput: send + periodic
  receive-side drain for each Table 2 primitive, no verifier attached.
* ``policy:<name>`` — verifier throughput: a violation-free
  representative op stream is sent over an AppendWrite-uarch channel
  and drained through :meth:`Verifier.poll`, exercising counter
  validation, batch dispatch, and the policy's checks.  The
  ``policy:hq-cfi`` entry is the paper's hot path (define/check
  pointer-integrity traffic) and the configuration the ≥5x acceptance
  target is measured on.
* ``e2e:<design>:<channel>`` — a full :func:`run_program` execution of
  a generated SPEC-like workload, reporting both messages/sec and
  interpreter steps/sec.

The harness is *feature-detecting*: it drives ``Channel.send_raw`` /
``receive_words`` (the flat packed word-stream path) when the running
tree provides them and falls back to ``Message`` objects +
``receive_all`` otherwise — so the very same file measures a pre-change
checkout, which is how the committed baseline in ``BENCH_msgpath.json``
was produced.

Flags:

* ``--quick`` — smaller message counts (CI-sized).
* ``--json`` — machine-readable output on stdout.
* ``--messages N`` — override the per-benchmark message count.
* ``--out PATH`` — where to write the JSON report ('-' to skip).
* ``--baseline PATH`` — embed a previously captured report as the
  comparison baseline and compute per-benchmark speedups.
* ``--check PATH [--tolerance F]`` — regression guard: exit non-zero
  if any benchmark's msgs/sec drops more than ``F`` (default 0.30)
  below the committed report at PATH.  A ``--quick`` run is judged
  against the report's ``quick_benchmarks`` section (quick-mode
  throughput is systematically lower than full-size, so quick CI runs
  compare like-for-like).
* ``--update-quick PATH`` — refresh that ``quick_benchmarks`` section
  from the current ``--quick`` run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.timing import (best_of, emit_perf_profile,
                                floor_failures, reference_benchmarks,
                                update_quick_section)
from repro.core.messages import Message, Op
from repro.core.verifier import Verifier
from repro.ipc.registry import create_channel
from repro.sim.process import Process

#: Every Table 2 primitive (``sim`` is an alias of ``uarch``).
CHANNEL_PRIMITIVES = ("mq", "pipe", "socket", "shm", "lwc", "fpga",
                      "uarch", "model")

#: Messages sent between receive-side drains, well below every
#: channel's default capacity so full-buffer handling never triggers.
DRAIN_EVERY = 2048

#: The acceptance-criteria benchmark key (hq_cfi + uarch).
HOT_PATH = "policy:hq-cfi"

#: Timing repeats per channel/policy benchmark: the best of N rounds is
#: reported — the standard defence against scheduler noise when timing
#: sub-second loops.  The e2e benchmark runs once: it is interpreter-
#: bound and long enough to amortize noise.
ROUNDS = 3

#: Default message counts.
FULL_MESSAGES = 200_000
QUICK_MESSAGES = 20_000

_OP_BY_VALUE = {int(op): op for op in Op}

# Flat (op, arg0, arg1, aux) event tuples; streams below are built from
# these so both the word path and the legacy Message path replay the
# exact same traffic.
Event = Tuple[int, int, int, int]

_DEFINE = int(Op.POINTER_DEFINE)
_CHECK = int(Op.POINTER_CHECK)
_SYSCALL = int(Op.SYSCALL)
_EVENT = int(Op.EVENT)
_ALLOC_CREATE = int(Op.ALLOCATION_CREATE)
_ALLOC_CHECK = int(Op.ALLOCATION_CHECK)
_ALLOC_CHECK_BASE = int(Op.ALLOCATION_CHECK_BASE)
_ALLOC_DESTROY = int(Op.ALLOCATION_DESTROY)


# ---------------------------------------------------------------------------
# Representative, violation-free policy streams
# ---------------------------------------------------------------------------

def _with_syscalls(events: List[Event], every: int = 64) -> List[Event]:
    """Interleave SYSCALL sync markers like instrumented programs do."""
    out: List[Event] = []
    for i, event in enumerate(events):
        out.append(event)
        if (i + 1) % every == 0:
            out.append((_SYSCALL, 1, 0, 0))
    return out


def _cfi_stream(n: int) -> List[Event]:
    """The paper's dominant traffic: 1 define : 3 checks, 256 hot slots."""
    out: List[Event] = []
    i = 0
    while len(out) < n:
        slot = i % 256
        address = 0x1000 + slot * 8
        value = 0x40_0000 + i
        out.append((_DEFINE, address, value, 0))
        out.append((_CHECK, address, value, 0))
        out.append((_CHECK, address, value, 0))
        out.append((_CHECK, address, value, 0))
        i += 1
    return _with_syscalls(out[:n])


def _memory_safety_stream(n: int) -> List[Event]:
    out: List[Event] = []
    i = 0
    while len(out) < n:
        base = 0x10_0000 + (i % 512) * 256
        out.append((_ALLOC_CREATE, base, 64, 0))
        out.append((_ALLOC_CHECK, base + 8, 0, 0))
        out.append((_ALLOC_CHECK_BASE, base + 8, base + 16, 0))
        out.append((_ALLOC_DESTROY, base, 0, 0))
        i += 1
    return _with_syscalls(out[:n])


def _call_counter_stream(n: int) -> List[Event]:
    return _with_syscalls([(_EVENT, 1, 1, 0)] * n)


def _dfi_stream(n: int) -> List[Event]:
    out: List[Event] = []
    i = 0
    while len(out) < n:
        address = 0x2000 + (i % 256) * 8
        out.append((_EVENT, 20, address, 5))   # DFI_STORE, def id 5
        out.append((_EVENT, 22, address, 1))   # DFI_CHECK, set id 1
        i += 1
    return _with_syscalls(out[:n])


def _taint_stream(n: int) -> List[Event]:
    out: List[Event] = []
    i = 0
    while len(out) < n:
        address = 0x3000 + (i % 256) * 8
        out.append((_EVENT, 10, address, 0))   # TAINT_SOURCE
        out.append((_EVENT, 12, address, 0))   # TAINT_CLEAR
        out.append((_EVENT, 11, address, 0))   # TAINT_SINK (clean)
        i += 1
    return _with_syscalls(out[:n])


def _watchdog_stream(n: int) -> List[Event]:
    return _with_syscalls([(_EVENT, 2, seq, 0) for seq in range(1, n + 1)])


def _policy_factories() -> Dict[str, Tuple[Callable, Callable[[int], List[Event]]]]:
    from repro.cfi.hq_cfi import HQCFIPolicy
    from repro.policies.call_counter import CallCounterPolicy
    from repro.policies.dfi import DFIPolicy
    from repro.policies.memory_safety import MemorySafetyPolicy
    from repro.policies.taint import TaintPolicy
    from repro.policies.watchdog import WatchdogPolicy
    return {
        "hq-cfi": (HQCFIPolicy, _cfi_stream),
        "memory-safety": (MemorySafetyPolicy, _memory_safety_stream),
        "call-counter": (CallCounterPolicy, _call_counter_stream),
        "dfi": (lambda: DFIPolicy({1: frozenset({0, 5})}), _dfi_stream),
        "taint": (TaintPolicy, _taint_stream),
        "watchdog": (WatchdogPolicy, _watchdog_stream),
    }


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------

def bench_channel(primitive: str, n: int) -> Dict[str, object]:
    """Transport throughput: send ``n`` messages with periodic drains."""
    channel = create_channel(primitive)
    process = Process(name="msgpath-bench")
    send_raw = getattr(channel, "send_raw", None)
    receive = getattr(channel, "receive_words", None) or channel.receive_all
    start = time.perf_counter()
    sent = 0
    if send_raw is not None:
        while sent < n:
            burst = min(DRAIN_EVERY, n - sent)
            for _ in range(burst):
                send_raw(process, _DEFINE, 0x1000, 0x40_0000, 0)
            receive()
            sent += burst
    else:
        define = Op.POINTER_DEFINE
        while sent < n:
            burst = min(DRAIN_EVERY, n - sent)
            for _ in range(burst):
                channel.send(process, Message(define, 0x1000, 0x40_0000))
            receive()
            sent += burst
    elapsed = time.perf_counter() - start
    return {"messages": n, "elapsed_s": elapsed,
            "msgs_per_sec": n / elapsed if elapsed else 0.0,
            "path": "words" if send_raw is not None else "objects"}


def bench_policy(name: str, factory: Callable,
                 stream: List[Event], n: int) -> Dict[str, object]:
    """Verifier throughput over an AppendWrite-uarch channel."""
    verifier = Verifier(factory)
    channel = create_channel("uarch", capacity=1 << 14)
    verifier.attach_channel(channel)
    process = Process(name="msgpath-bench")
    verifier.register_process(process.pid)
    send_raw = getattr(channel, "send_raw", None)
    start = time.perf_counter()
    if send_raw is not None:
        for base in range(0, len(stream), DRAIN_EVERY):
            for op, arg0, arg1, aux in stream[base:base + DRAIN_EVERY]:
                send_raw(process, op, arg0, arg1, aux)
            verifier.poll()
    else:
        ops = _OP_BY_VALUE
        for base in range(0, len(stream), DRAIN_EVERY):
            for op, arg0, arg1, aux in stream[base:base + DRAIN_EVERY]:
                channel.send(process, Message(ops[op], arg0, arg1, aux))
            verifier.poll()
    verifier.poll()
    elapsed = time.perf_counter() - start
    stats = verifier.stats.get(process.pid)
    return {"messages": len(stream), "elapsed_s": elapsed,
            "msgs_per_sec": len(stream) / elapsed if elapsed else 0.0,
            "processed": stats.messages_processed if stats else 0,
            "violations": stats.violations if stats else 0,
            "path": "words" if send_raw is not None else "objects"}


def bench_e2e(design: str = "hq-sfestk", channel: str = "uarch",
              quick: bool = False) -> Dict[str, object]:
    """Full run_program throughput on a message-heavy generated workload."""
    from repro.core.framework import run_program
    from repro.workloads.generator import build_module
    from repro.workloads.profiles import get_profile
    profile = get_profile("453.povray")   # dense icall/check traffic
    module = build_module(profile, dataset="train" if quick else "ref")
    start = time.perf_counter()
    result = run_program(module, design=design, channel=channel,
                         kill_on_violation=False)
    elapsed = time.perf_counter() - start
    return {"messages": result.messages_sent, "elapsed_s": elapsed,
            "msgs_per_sec": result.messages_sent / elapsed if elapsed else 0.0,
            "steps_per_sec": result.steps / elapsed if elapsed else 0.0,
            "outcome": result.outcome, "steps": result.steps}


def run_suite(messages: int, quick: bool,
              rounds: int = ROUNDS) -> Dict[str, Dict[str, object]]:
    benchmarks: Dict[str, Dict[str, object]] = {}
    channel_messages = max(1, messages // 2)
    for primitive in CHANNEL_PRIMITIVES:
        benchmarks[f"channel:{primitive}"] = best_of(
            rounds, lambda p=primitive: bench_channel(p, channel_messages))
    for name, (factory, stream_fn) in _policy_factories().items():
        stream = stream_fn(messages)
        benchmarks[f"policy:{name}"] = best_of(
            rounds, lambda n=name, f=factory, s=stream: bench_policy(
                n, f, s, messages))
    benchmarks["e2e:hq-sfestk:uarch"] = bench_e2e(quick=quick)
    return benchmarks


# ---------------------------------------------------------------------------
# Reporting / regression guard
# ---------------------------------------------------------------------------

def build_report(benchmarks: Dict[str, Dict[str, object]], messages: int,
                 quick: bool,
                 baseline: Optional[dict] = None) -> dict:
    report = {
        "harness": "repro.bench.msgpath",
        "quick": quick,
        "messages": messages,
        "hot_path": HOT_PATH,
        "benchmarks": benchmarks,
    }
    if baseline is not None:
        base_benchmarks = baseline.get("benchmarks", {})
        speedup = {}
        for key, current in benchmarks.items():
            before = base_benchmarks.get(key, {}).get("msgs_per_sec")
            if before:
                speedup[key] = round(
                    float(current["msgs_per_sec"]) / float(before), 2)
        report["baseline"] = {
            "note": baseline.get("note",
                                 "same harness on the pre-change tree"),
            "benchmarks": base_benchmarks,
        }
        report["speedup_vs_baseline"] = speedup
    return report


def check_regression(benchmarks: Dict[str, Dict[str, object]],
                     committed_path: str, tolerance: float,
                     quick: bool = False) -> List[str]:
    """Compare against a committed report; list the benchmarks that
    regressed by more than ``tolerance`` (fraction of msgs/sec).

    A quick run is judged against the committed report's
    ``quick_benchmarks`` section when present: quick-mode throughput is
    systematically below full-size throughput (less warm-up
    amortization per message), so comparing a ``--quick`` CI run
    against full-size references would flag phantom regressions.
    """
    with open(committed_path) as fh:
        committed = json.load(fh)
    reference_set = reference_benchmarks(committed, quick)
    return floor_failures(
        {key: entry.get("msgs_per_sec")
         for key, entry in benchmarks.items()},
        {key: entry.get("msgs_per_sec")
         for key, entry in reference_set.items()},
        tolerance)


def format_human(report: dict) -> str:
    lines = ["message-path throughput (msgs/sec)", ""]
    speedups = report.get("speedup_vs_baseline", {})
    width = max(len(key) for key in report["benchmarks"])
    for key, entry in report["benchmarks"].items():
        extra = ""
        if key in speedups:
            extra = f"   {speedups[key]:.2f}x vs baseline"
        if key.startswith("e2e"):
            extra += f"   ({entry['steps_per_sec']:,.0f} steps/s)"
        marker = "  <- hot path" if key == report["hot_path"] else ""
        lines.append(f"  {key:<{width}}  {entry['msgs_per_sec']:>12,.0f}"
                     f"{extra}{marker}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.msgpath",
        description="Benchmark the HerQules message path (msgs/sec).")
    parser.add_argument("--quick", action="store_true",
                        help=f"CI-sized run ({QUICK_MESSAGES} messages per "
                             f"benchmark instead of {FULL_MESSAGES})")
    parser.add_argument("--json", action="store_true",
                        help="print the JSON report on stdout")
    parser.add_argument("--messages", type=int, default=None,
                        help="override the per-benchmark message count")
    parser.add_argument("--rounds", type=int, default=ROUNDS,
                        help="timing repeats per benchmark; the best "
                             "round is reported (default: %(default)s)")
    parser.add_argument("--out", default="BENCH_msgpath.json",
                        help="report path (default: %(default)s; '-' skips)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="embed PATH (a previous report) as the "
                             "comparison baseline")
    parser.add_argument("--check", default=None, metavar="PATH",
                        help="regression guard: fail if msgs/sec drops more "
                             "than --tolerance below the report at PATH")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop for --check "
                             "(default: %(default)s)")
    parser.add_argument("--update-quick", default=None, metavar="PATH",
                        help="merge this --quick run's numbers into the "
                             "committed report at PATH as its "
                             "quick_benchmarks section (the reference "
                             "--check uses for quick runs)")
    parser.add_argument("--perf-profile", default=None, metavar="PATH",
                        help="also fold the numbers into the unified "
                             "perf profile at PATH "
                             "(repro.perf.profile.write)")
    args = parser.parse_args(argv)
    if args.update_quick and not args.quick:
        parser.error("--update-quick requires --quick")

    messages = args.messages or (QUICK_MESSAGES if args.quick
                                 else FULL_MESSAGES)
    baseline = None
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)

    benchmarks = run_suite(messages, quick=args.quick, rounds=args.rounds)
    report = build_report(benchmarks, messages, args.quick, baseline)

    if args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.json:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(format_human(report))

    if args.update_quick:
        update_quick_section(args.update_quick, benchmarks, messages)

    if args.perf_profile:
        emit_perf_profile(args.perf_profile, "msgpath", report,
                          quick=args.quick,
                          meta={"messages": messages})

    if args.check:
        failures = check_regression(benchmarks, args.check, args.tolerance,
                                    quick=args.quick)
        if failures:
            print("\nthroughput regression detected:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 2
        print(f"\nregression guard: ok (tolerance {args.tolerance:.0%} "
              f"vs {args.check})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
