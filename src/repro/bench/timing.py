"""Wall-clock instrumentation for the experiment pipeline.

``python -m repro.bench`` wraps each experiment in a
:class:`PipelineTimer` phase and writes the result to
``BENCH_pipeline.json`` at the repo root, so the pipeline's own
performance (interpreter fast path, run-result cache, ``--jobs``
fan-out) is tracked across PRs the same way the paper's numbers are.

The JSON report records per-phase seconds, the total, the job count and
cache statistics of the run, and the measured seed-baseline wall time
(:data:`SEED_SERIAL_SECONDS`) the speedup is computed against.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: Measured wall time of the full serial, uncached ``python -m
#: repro.bench`` at the seed commit (b7c76a3) on the reference CI
#: machine — the denominator for the tracked speedup.
SEED_SERIAL_SECONDS = 79.8


class PipelineTimer:
    """Accumulates named wall-clock phases."""

    def __init__(self) -> None:
        self.phases: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def report(self, jobs: int, cache_stats: Optional[dict] = None) -> dict:
        """The ``BENCH_pipeline.json`` payload."""
        total = self.total
        return {
            "pipeline": "python -m repro.bench",
            "jobs": jobs,
            "phases_seconds": {name: round(secs, 3)
                               for name, secs in self.phases.items()},
            "total_seconds": round(total, 3),
            "seed_serial_seconds": SEED_SERIAL_SECONDS,
            "speedup_vs_seed": round(SEED_SERIAL_SECONDS / total, 2)
            if total > 0 else None,
            "cache": cache_stats or {},
        }

    def write(self, path: str, jobs: int,
              cache_stats: Optional[dict] = None) -> dict:
        payload = self.report(jobs, cache_stats)
        # The interpreter-tier section is owned by ``python -m
        # repro.bench.interp --update``; carry it through rewrites so
        # the two producers can share one committed report.
        try:
            with open(path, encoding="utf-8") as handle:
                existing = json.load(handle)
            if "interp_tier" in existing:
                payload["interp_tier"] = existing["interp_tier"]
        except (OSError, ValueError):
            pass
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        return payload
