"""Wall-clock instrumentation for the experiment pipeline.

``python -m repro.bench`` wraps each experiment in a
:class:`PipelineTimer` phase and writes the result to
``BENCH_pipeline.json`` at the repo root, so the pipeline's own
performance (interpreter fast path, run-result cache, ``--jobs``
fan-out) is tracked across PRs the same way the paper's numbers are.

The JSON report records per-phase seconds, the total, the job count and
cache statistics of the run, and the measured seed-baseline wall time
(:data:`SEED_SERIAL_SECONDS`) the speedup is computed against.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Mapping, Optional

#: Measured wall time of the full serial, uncached ``python -m
#: repro.bench`` at the seed commit (b7c76a3) on the reference CI
#: machine — the denominator for the tracked speedup.
SEED_SERIAL_SECONDS = 79.8


class PipelineTimer:
    """Accumulates named wall-clock phases."""

    def __init__(self) -> None:
        self.phases: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def report(self, jobs: int, cache_stats: Optional[dict] = None) -> dict:
        """The ``BENCH_pipeline.json`` payload."""
        total = self.total
        return {
            "pipeline": "python -m repro.bench",
            "jobs": jobs,
            "phases_seconds": {name: round(secs, 3)
                               for name, secs in self.phases.items()},
            "total_seconds": round(total, 3),
            "seed_serial_seconds": SEED_SERIAL_SECONDS,
            "speedup_vs_seed": round(SEED_SERIAL_SECONDS / total, 2)
            if total > 0 else None,
            "cache": cache_stats or {},
        }

    def write(self, path: str, jobs: int,
              cache_stats: Optional[dict] = None,
              perf_profile: Optional[str] = None) -> dict:
        payload = self.report(jobs, cache_stats)
        # The interpreter-tier section is owned by ``python -m
        # repro.bench.interp --update``; carry it through rewrites so
        # the two producers can share one committed report.
        try:
            with open(path, encoding="utf-8") as handle:
                existing = json.load(handle)
            if "interp_tier" in existing:
                payload["interp_tier"] = existing["interp_tier"]
        except (OSError, ValueError):
            pass
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        if perf_profile:
            emit_perf_profile(perf_profile, "pipeline", payload)
        return payload


# ---------------------------------------------------------------------------
# Shared measurement harness
# ---------------------------------------------------------------------------
#
# Every timing CLI in this package (msgpath, interp, sharding) uses the
# same defences against scheduler noise and the same regression-guard
# semantics; they live here once instead of three slightly-divergent
# copies.

def best_of(rounds: int, fn: Callable[[], Dict[str, object]], *,
            key: str = "msgs_per_sec") -> Dict[str, object]:
    """Run ``fn`` up to ``rounds`` times; keep the result dict with the
    highest value under ``key``, annotated with the round count — the
    standard defence against scheduler noise when timing sub-second
    loops.  The profile schema records ``rounds`` so the degradation
    detectors can scale their noise allowance accordingly."""
    rounds = max(1, rounds)
    best: Optional[Dict[str, object]] = None
    for _ in range(rounds):
        result = fn()
        if best is None or float(result[key]) > float(best[key]):
            best = result
    assert best is not None
    best["rounds"] = rounds
    return best


def reference_benchmarks(committed: Mapping[str, object],
                         quick: bool) -> Mapping[str, object]:
    """The benchmark set a run should be judged against: a quick run
    compares like-for-like with the committed report's
    ``quick_benchmarks`` section when one exists (quick-mode throughput
    is systematically below full-size throughput)."""
    if quick and committed.get("quick_benchmarks"):
        return committed["quick_benchmarks"]  # type: ignore[return-value]
    return committed.get("benchmarks", {})  # type: ignore[return-value]


def floor_failures(current: Mapping[str, float],
                   reference: Mapping[str, float],
                   tolerance: float, *,
                   unit: str = "msgs/s") -> List[str]:
    """Tolerance-floor comparison: one failure line per metric whose
    current value fell more than ``tolerance`` below its reference.
    Metrics missing from either side are skipped (the unified
    ``repro.perf check`` gate warns about those)."""
    failures: List[str] = []
    for name in sorted(reference):
        ref = reference[name]
        cur = current.get(name)
        if not ref or cur is None:
            continue
        floor = float(ref) * (1.0 - tolerance)
        if float(cur) < floor:
            failures.append(
                f"{name}: {float(cur):,.0f} {unit} is below the "
                f"{tolerance:.0%}-tolerance floor {floor:,.0f} "
                f"(committed {float(ref):,.0f})")
    return failures


def update_quick_section(path: str, benchmarks: Dict[str, object],
                         messages: int, **extra: object) -> None:
    """Merge a ``--quick`` run's numbers into the committed report at
    ``path`` as its ``quick_benchmarks`` section (plus any extra
    ``quick_*`` keys), preserving everything else."""
    with open(path, encoding="utf-8") as fh:
        committed = json.load(fh)
    committed["quick_benchmarks"] = benchmarks
    committed["quick_messages"] = messages
    committed.update(extra)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(committed, fh, indent=2, sort_keys=True)
        fh.write("\n")


def emit_perf_profile(path: str, source: str, payload: dict, *,
                      quick: Optional[bool] = None,
                      meta: Optional[dict] = None) -> None:
    """Fold a bench report into a unified perf profile at ``path``
    through the shared :func:`repro.perf.profile.write` API (the
    payload keeps being written in its native shape alongside)."""
    from repro.perf import profile as perf_profile
    from repro.perf import snapshots
    metrics = snapshots.metrics_from_payload(payload, quick=False)
    perf_profile.write(path, source, metrics, quick=quick,
                       meta=meta)
