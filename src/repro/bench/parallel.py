"""Parallel sweep executor for the experiment pipeline.

The pipeline's work units — one (benchmark, design, channel) run, one
(density, primitive) sweep point — are independent deterministic
simulations, so they fan out cleanly across a
:class:`concurrent.futures.ProcessPoolExecutor`:

* **deterministic ordering**: results come back via ``executor.map``,
  i.e. in submission order, so parallel output is byte-identical to
  serial output;
* **job-count resolution**: ``--jobs N`` / ``REPRO_JOBS`` / ``auto``
  via :func:`resolve_jobs`; ``jobs <= 1`` (the default when neither is
  given) runs serially in-process with no executor at all;
* **per-worker cache warm-up**: each worker process activates a
  disk-backed :class:`~repro.bench.cache.RunCache` pointing at the same
  directory as the parent, so a baseline computed by one worker is a
  disk hit for every other worker (and for the parent afterwards)
  instead of a stampede of redundant runs.

Work functions must be module-level (picklable).  Workers return
``(result, stats)`` pairs internally so the parent can merge worker
cache statistics into its own counters.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.bench.cache import (CacheStats, RunCache, active_cache,
                               enable_cache)

T = TypeVar("T")

#: Cap on ``auto`` job counts: the pipeline has at most a few dozen
#: units per fan-out, so more workers than this just pay startup cost.
MAX_AUTO_JOBS = 16


def resolve_jobs(jobs: object = None) -> int:
    """Normalize a jobs request to a concrete worker count.

    ``None`` falls back to the ``REPRO_JOBS`` environment variable
    (absent → 1, i.e. serial).  ``"auto"`` (either source) means one
    worker per CPU, capped at :data:`MAX_AUTO_JOBS`.
    """
    if jobs is None:
        jobs = os.environ.get("REPRO_JOBS", "").strip() or 1
    if isinstance(jobs, str):
        if jobs.lower() == "auto":
            return max(1, min(os.cpu_count() or 1, MAX_AUTO_JOBS))
        jobs = int(jobs)
    return max(1, int(jobs))


# -- worker side ------------------------------------------------------------

#: Set by :func:`_init_worker` in each worker process.
_WORKER_CACHE: Optional[RunCache] = None


def _init_worker(disk_dir: Optional[str]) -> None:
    """Worker initializer: warm up a disk-backed cache.

    Every worker shares the parent's on-disk store, so the first worker
    to finish a given baseline publishes it for all the others.
    """
    global _WORKER_CACHE
    _WORKER_CACHE = enable_cache(disk_dir=disk_dir) if disk_dir else None


def _run_unit(payload: Tuple[Callable[..., T], bool, object]
              ) -> Tuple[T, Optional[CacheStats]]:
    """Execute one work unit in a worker; piggyback cache stats."""
    fn, star, item = payload
    result = fn(*item) if star else fn(item)
    stats = _WORKER_CACHE.stats if _WORKER_CACHE is not None else None
    if stats is not None:
        # Report only this unit's activity: hand the parent a snapshot
        # delta by resetting after each unit.
        snapshot = CacheStats(**vars(stats))
        _WORKER_CACHE.stats = CacheStats()
        return result, snapshot
    return result, None


# -- parent side ------------------------------------------------------------

def parallel_map(fn: Callable[..., T], items: Sequence[object],
                 jobs: object = None, star: bool = False) -> List[T]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Results are returned in input order regardless of completion order.
    ``star=True`` unpacks each item as ``fn(*item)``.  With
    ``jobs <= 1`` this is a plain in-process loop — no executor, no
    pickling requirements beyond the serial path's.
    """
    jobs = resolve_jobs(jobs)
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(*item) if star else fn(item) for item in items]

    cache = active_cache()
    disk_dir = cache.disk_dir if cache is not None else None
    payloads = [(fn, star, item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items)),
                             initializer=_init_worker,
                             initargs=(disk_dir,)) as executor:
        outcomes = list(executor.map(_run_unit, payloads))

    results: List[T] = []
    for result, stats in outcomes:
        results.append(result)
        if cache is not None and stats is not None:
            cache.stats.merge(stats)
    return results
