"""Table 6: size of HerQules components in lines of code.

The paper reports the original C++/Verilog implementation at::

    FPGA  Kernel  Compiler  IPC Interfaces  Runtime  Verifier
    1250    1100      3350             900      350       750

This module measures the same breakdown over *this* reproduction by
mapping our Python modules onto the paper's components and counting
non-blank, non-comment source lines.  Absolute counts differ by
language and by what each codebase must carry (we also implement the
machine itself), but the *relative* weight — the compiler being by far
the largest component, the runtime the smallest — is the comparable
claim.
"""

from __future__ import annotations

import os
from typing import Dict, List

import repro

#: Paper component → our module paths (relative to the package root).
COMPONENT_MODULES: Dict[str, List[str]] = {
    # The FPGA AFU and the uarch datapath both live in the AppendWrite
    # implementation (plus the AMR enforcement inside the memory model).
    "fpga": ["ipc/appendwrite.py"],
    "kernel": ["sim/kernel.py"],
    "compiler": ["compiler"],
    "ipc-interfaces": ["ipc/base.py", "ipc/posix.py", "ipc/shared_memory.py",
                       "ipc/lwc.py", "ipc/registry.py", "ipc/latency.py"],
    "runtime": ["core/runtime.py"],
    "verifier": ["core/verifier.py", "core/policy.py", "cfi/hq_cfi.py",
                 "cfi/pointer_table.py"],
}

PAPER_TABLE6 = {
    "fpga": 1250, "kernel": 1100, "compiler": 3350,
    "ipc-interfaces": 900, "runtime": 350, "verifier": 750,
}


def count_source_lines(path: str) -> int:
    """Non-blank, non-comment physical lines in a Python file.

    Docstrings count as documentation, not code, and are skipped with a
    simple tracker (sufficient for this codebase's conventional style).
    """
    lines = 0
    in_doc = False
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            stripped = raw.strip()
            if not stripped:
                continue
            if in_doc:
                if stripped.endswith('"""') or stripped.endswith("'''"):
                    in_doc = False
                continue
            if stripped.startswith(('"""', "'''")):
                quote = stripped[:3]
                body = stripped[3:]
                if not (body.endswith(quote) and len(stripped) >= 6):
                    in_doc = True
                continue
            if stripped.startswith("#"):
                continue
            lines += 1
    return lines


def _walk(path: str) -> List[str]:
    if os.path.isfile(path):
        return [path]
    found = []
    for root, _, files in os.walk(path):
        for name in sorted(files):
            if name.endswith(".py"):
                found.append(os.path.join(root, name))
    return found


def table6() -> Dict[str, int]:
    """Lines of code per paper component, measured on this repo."""
    package_root = os.path.dirname(os.path.abspath(repro.__file__))
    counts = {}
    for component, relpaths in COMPONENT_MODULES.items():
        total = 0
        for relpath in relpaths:
            for path in _walk(os.path.join(package_root, relpath)):
                total += count_source_lines(path)
        counts[component] = total
    return counts


def format_table6(counts: Dict[str, int]) -> str:
    lines = [f"{'Component':<16} {'This repo':>10} {'Paper':>8}"]
    for component, count in counts.items():
        lines.append(f"{component:<16} {count:>10} "
                     f"{PAPER_TABLE6[component]:>8}")
    return "\n".join(lines)
