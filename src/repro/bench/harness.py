"""Experiment harness: runs benchmarks under designs, computes the
paper's metrics (relative performance, correctness categories, message
statistics), and aggregates them into the tables and figures of
section 5.

Key conventions from the paper:

* every design is normalized against a **version-specific baseline**
  (CCFI/CPI are built on legacy Clang 3.x, everything else on modern
  Clang 10), so relative performance and output comparison use the
  matching baseline build;
* correctness and performance runs *continue after policy violations*
  (``kill_on_violation=False``) because of the baselines' false
  positives; only the RIPE effectiveness runs kill;
* relative performance is ``baseline_time / design_time`` for SPEC
  (execution time) and equivalently throughput ratio for NGINX.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.bench.cache import cached_run_program, run_key
from repro.cfi.designs import get_design
from repro.core.framework import RunResult
from repro.sim.cycles import AccountingMode
from repro.workloads.generator import build_module
from repro.workloads.profiles import PROFILES, get_profile

#: Designs built with the legacy Clang 3.x toolchain (section 5).
#: ``baseline-ccfi``/``baseline-cpi`` are Table 4's version-specific
#: baselines: uninstrumented, but built with the legacy toolchain.
LEGACY_DESIGNS = {"ccfi", "cpi", "baseline-ccfi", "baseline-cpi"}

#: Step budget shared by every harness run, so the baseline for a
#: benchmark is one cacheable run no matter which experiment asks.
HARNESS_MAX_STEPS = 10_000_000


def compiler_for(design: str) -> str:
    """Toolchain generation used to build benchmarks for ``design``."""
    return "legacy" if design in LEGACY_DESIGNS else "modern"


def observe_enabled(observe: Optional[bool] = None) -> bool:
    """Resolve the harness-wide observability switch.

    Explicit ``observe`` wins; otherwise the ``REPRO_OBS`` environment
    variable (set by ``python -m repro.bench --observe``) decides.  The
    env-var path is what lets parallel sweep workers inherit the switch
    without plumbing it through every call site.
    """
    if observe is not None:
        return observe
    return os.environ.get("REPRO_OBS", "") not in ("", "0")


def real_design(design: str) -> str:
    """Resolve Table 4 baseline aliases to the underlying design."""
    if design in ("baseline-ccfi", "baseline-cpi"):
        return "baseline"
    return design


def run_benchmark(name: str, design: str, channel: str = "model",
                  dataset: str = "ref",
                  max_steps: int = HARNESS_MAX_STEPS,
                  observe: Optional[bool] = None) -> RunResult:
    """Run one benchmark under one design (continue-on-violation mode).

    Served through the run-result cache when one is active.  The cache
    key drops the channel for unmonitored designs (in-process defenses
    ignore it), so e.g. a ``ccfi`` run is one entry regardless of the
    channel the caller happened to pass.

    With observability on (``observe=True`` or ``REPRO_OBS``), the run
    carries an :class:`repro.obs.Observer` and the resulting
    ``RunResult.obs_report`` persists through the cache; the knob joins
    the cache key only when enabled, so unobserved runs keep their
    existing keys.
    """
    profile = get_profile(name)
    compiler = compiler_for(design)
    resolved = real_design(design)
    key_channel = channel if get_design(resolved).monitored else None
    observed = observe_enabled(observe)
    knobs = {"observe": True} if observed else {}
    key = run_key(profile, dataset, compiler, resolved, key_channel,
                  kill_on_violation=False, max_steps=max_steps, **knobs)
    return cached_run_program(
        lambda: build_module(profile, dataset=dataset, compiler=compiler),
        key, design=resolved, channel=channel,
        kill_on_violation=False, max_steps=max_steps, observe=observed)


def baseline_run(name: str, dataset: str = "ref",
                 compiler: str = "modern",
                 max_steps: int = HARNESS_MAX_STEPS,
                 observe: Optional[bool] = None) -> RunResult:
    """The version-specific uninstrumented baseline for one benchmark.

    Exactly one execution per (benchmark, dataset, compiler) when the
    cache is active — performance normalization, correctness reference
    output, and the section-5.4 metrics all share it.
    """
    profile = get_profile(name)
    observed = observe_enabled(observe)
    knobs = {"observe": True} if observed else {}
    key = run_key(profile, dataset, compiler, "baseline", None,
                  kill_on_violation=False, max_steps=max_steps, **knobs)
    return cached_run_program(
        lambda: build_module(profile, dataset=dataset, compiler=compiler),
        key, design="baseline", kill_on_violation=False,
        max_steps=max_steps, observe=observed)


@dataclass
class PerfPoint:
    """Relative performance of one benchmark under one design."""

    benchmark: str
    design: str
    channel: Optional[str]
    relative: Optional[float]       # None when the run failed
    baseline_cycles: float = 0.0
    design_cycles: float = 0.0
    messages: int = 0
    excluded_reason: str = ""


def relative_performance(name: str, design: str, channel: str = "model",
                         dataset: str = "ref",
                         accounting: AccountingMode = AccountingMode.MODEL
                         ) -> PerfPoint:
    """Relative performance vs the version-specific baseline.

    Benchmarks that error or produce invalid output under the design are
    excluded from means, exactly as in section 5.3.2 ("we omit
    measurements for benchmarks that encounter errors or produce
    invalid output, but not if only false positives are emitted").
    """
    # Only the version-matching baseline executes: legacy designs are
    # normalized against a legacy-toolchain baseline build, everything
    # else against the modern one.
    base = baseline_run(name, dataset=dataset,
                        compiler=compiler_for(design))
    result = run_benchmark(name, design, channel=channel, dataset=dataset)

    point = PerfPoint(benchmark=name, design=design,
                      channel=result.channel, relative=None,
                      messages=result.messages_sent)
    if not base.ok:
        point.excluded_reason = f"baseline failed: {base.outcome}"
        return point
    if not result.ok:
        point.excluded_reason = result.outcome
        return point
    if result.output != base.output:
        point.excluded_reason = "invalid output"
        return point
    point.baseline_cycles = base.total_cycles(accounting)
    point.design_cycles = result.total_cycles(accounting)
    if point.design_cycles > 0:
        point.relative = point.baseline_cycles / point.design_cycles
    return point


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; raises on an empty sequence."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def perf_sweep(design: str, channel: str = "model", dataset: str = "ref",
               benchmarks: Optional[List[str]] = None,
               accounting: AccountingMode = AccountingMode.MODEL,
               jobs: Optional[int] = None) -> List[PerfPoint]:
    """Relative performance of every benchmark under one design.

    ``jobs`` > 1 fans the benchmarks across worker processes (each unit
    needs its own baseline, so units don't contend; the shared disk
    cache still deduplicates across successive sweeps).
    """
    from repro.bench.parallel import parallel_map
    names = benchmarks or [p.name for p in PROFILES]
    units = [(name, design, channel, dataset, accounting)
             for name in names]
    return parallel_map(relative_performance, units, jobs=jobs, star=True)


def sweep_geomean(points: List[PerfPoint]) -> float:
    """Geometric mean over the included (non-excluded) points."""
    return geometric_mean([p.relative for p in points
                           if p.relative is not None])


# ---------------------------------------------------------------------------
# Correctness classification (Table 4)
# ---------------------------------------------------------------------------

@dataclass
class CorrectnessRecord:
    """Table 4 categories for one benchmark under one design.

    Categories are not mutually exclusive (a run can emit false
    positives and then crash).  ``true_positive`` marks violations on
    benchmarks with a *known real bug* (the omnetpp use-after-free) —
    discoveries, not false positives.
    """

    benchmark: str
    design: str
    error: bool = False
    false_positive: bool = False
    invalid: bool = False
    true_positive: bool = False

    @property
    def ok(self) -> bool:
        return not (self.error or self.false_positive or self.invalid)


def classify_correctness(name: str, design: str,
                         channel: str = "model") -> CorrectnessRecord:
    """Run and classify one benchmark per Table 4's taxonomy."""
    profile = get_profile(name)
    # The reference output comes from the version-specific baseline.
    base = baseline_run(name, compiler=compiler_for(design))
    result = run_benchmark(name, design, channel=channel)

    record = CorrectnessRecord(benchmark=name, design=design)
    record.error = not result.ok
    if result.ok and base.ok and result.output != base.output:
        record.invalid = True
    if record.error and result.output:
        # The run died after emitting output: what exists is truncated
        # or corrupt, so the result is also invalid.  A run that died
        # before producing any output counts as an error only.
        record.invalid = True

    violated = bool(result.violations) or result.runtime_violations > 0
    if violated:
        if profile.has("static_init_uaf") and design.startswith("hq"):
            # HQ-CFI's use-after-free discovery: a real bug (section
            # 5.2), not a false positive.
            record.true_positive = True
        else:
            record.false_positive = True
    return record


@dataclass
class Table4Row:
    """One row of Table 4."""

    design: str
    errors: int = 0
    false_positives: int = 0
    invalid: int = 0
    ok: int = 0
    true_positives: int = 0


def correctness_table(design: str, channel: str = "model",
                      benchmarks: Optional[List[str]] = None,
                      jobs: Optional[int] = None) -> Table4Row:
    """Aggregate Table 4 counts for one design."""
    from repro.bench.parallel import parallel_map
    names = benchmarks or [p.name for p in PROFILES]
    records = parallel_map(classify_correctness,
                           [(name, design, channel) for name in names],
                           jobs=jobs, star=True)
    row = Table4Row(design=design)
    for record in records:
        row.errors += record.error
        row.false_positives += record.false_positive
        row.invalid += record.invalid
        row.ok += record.ok
        row.true_positives += record.true_positive
    return row
