"""Interpreter-tier microbenchmark CLI.

``python -m repro.bench.interp`` measures raw steps/second of both
execution tiers — the per-block closure decode cache (``closure``) and
the compile tier's flat register VM with kernel superinstructions
(``vm``) — on the same compute-heavy workload the
``benchmarks/test_interp_speed.py`` floor uses, and verifies the two
tiers produce identical results while timing them.

* ``--update [PATH]`` — merge an ``interp_tier`` section into the
  committed ``BENCH_pipeline.json`` (other keys are preserved;
  ``repro.bench.timing`` preserves this section in turn when the
  pipeline timer rewrites the file).
* ``--check PATH [--tolerance F] [--min-speedup S]`` — regression
  guard: exit non-zero if either tier's measured rate drops more than
  ``tolerance`` below the committed section, or if the vm/closure
  speedup falls below ``min-speedup``.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, Optional, Tuple

from repro.core.framework import RunResult, run_program
from repro.workloads.generator import build_module
from repro.workloads.profiles import BenchmarkProfile

#: Same shape as ``benchmarks/test_interp_speed.py``: compute-only, no
#: instrumentation, so the dispatch loop is the entire cost (~0.9M
#: steps per run).
PROFILE = BenchmarkProfile(
    name="interp-speed",
    suite="CPU2017",
    language="C",
    iterations=3000,
    compute_ops=300,
    icalls_per_k=0,
    fnptr_writes_per_k=0,
    protected_calls_per_k=0,
    syscalls_per_k=0,
)

ROUNDS = 3
SECTION = "interp_tier"
DEFAULT_REPORT = "BENCH_pipeline.json"


def _measure(tier: str, rounds: int) -> Tuple[float, RunResult]:
    """Best-of-``rounds`` steps/second for one tier."""
    best = 0.0
    result: Optional[RunResult] = None
    for _ in range(rounds):
        module = build_module(PROFILE)
        start = time.perf_counter()
        result = run_program(module, design="baseline",
                             exec_option_overrides={"interp_tier": tier})
        elapsed = time.perf_counter() - start
        best = max(best, result.steps / elapsed)
    assert result is not None
    return best, result


def run_benchmark(rounds: int = ROUNDS) -> Dict[str, object]:
    """Measure both tiers; raises on any cross-tier result mismatch."""
    closure_rate, closure_result = _measure("closure", rounds)
    vm_rate, vm_result = _measure("vm", rounds)
    mismatches = [
        field for field in
        ("outcome", "exit_status", "steps", "cycles", "output")
        if getattr(vm_result, field) != getattr(closure_result, field)
    ]
    if mismatches:
        raise SystemExit(f"tier mismatch on {mismatches}: the compile "
                         f"tier diverged from the closure tier")
    return {
        "benchmark": (f"{PROFILE.iterations}x{PROFILE.compute_ops} "
                      f"compute (design=baseline)"),
        "steps": vm_result.steps,
        "rounds": rounds,
        "closure_steps_per_sec": round(closure_rate),
        "vm_steps_per_sec": round(vm_rate),
        "speedup": round(vm_rate / closure_rate, 2),
    }


def merge_section(path: str, section: Dict[str, object]) -> None:
    """Write ``section`` under :data:`SECTION` in the report at
    ``path``, preserving every other key (creates the file if absent)."""
    payload: Dict[str, object] = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    payload[SECTION] = section
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def check_regression(section: Dict[str, object], committed_path: str,
                     tolerance: float, min_speedup: float) -> list:
    """Regression failures vs the committed report (empty = pass)."""
    failures = []
    try:
        with open(committed_path, encoding="utf-8") as handle:
            committed = json.load(handle).get(SECTION)
    except (OSError, ValueError) as error:
        return [f"cannot read committed report {committed_path}: {error}"]
    if not committed:
        return [f"no {SECTION!r} section in {committed_path}"]
    for key in ("closure_steps_per_sec", "vm_steps_per_sec"):
        reference = committed.get(key)
        measured = section[key]
        if not reference:
            failures.append(f"{key}: no committed reference")
            continue
        floor = float(reference) * (1.0 - tolerance)
        if float(measured) < floor:
            failures.append(
                f"{key}: {measured:,} steps/s is below the "
                f"{tolerance:.0%}-tolerance floor {floor:,.0f} "
                f"(committed {reference:,})")
    if float(section["speedup"]) < min_speedup:
        failures.append(
            f"speedup: {section['speedup']}x vm-over-closure is below "
            f"the {min_speedup}x floor (compile tier collapsed?)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.interp",
        description="Measure interpreter-tier throughput "
                    "(closure vs compile tier).")
    parser.add_argument("--rounds", type=int, default=ROUNDS,
                        help="best-of rounds per tier (default: "
                             "%(default)s)")
    parser.add_argument("--json", action="store_true",
                        help="print the section as JSON")
    parser.add_argument("--update", nargs="?", const=DEFAULT_REPORT,
                        default=None, metavar="PATH",
                        help=f"merge the interp_tier section into the "
                             f"report at PATH (default: {DEFAULT_REPORT})")
    parser.add_argument("--check", default=None, metavar="PATH",
                        help="exit non-zero if a tier's rate drops more "
                             "than --tolerance below the report at PATH")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop for --check "
                             "(default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required vm-over-closure multiple for "
                             "--check (default: %(default)s)")
    args = parser.parse_args(argv)

    section = run_benchmark(args.rounds)
    if args.json:
        print(json.dumps(section, indent=2))
    else:
        print(f"interpreter tiers, best of {args.rounds} "
              f"({section['benchmark']}, {section['steps']:,} steps):")
        print(f"  closure  {section['closure_steps_per_sec']:>12,} steps/s")
        print(f"  vm       {section['vm_steps_per_sec']:>12,} steps/s")
        print(f"  speedup  {section['speedup']:>11}x")

    if args.update:
        merge_section(args.update, section)
        print(f"updated {args.update} [{SECTION}]")

    if args.check:
        failures = check_regression(section, args.check, args.tolerance,
                                    args.min_speedup)
        if failures:
            print("\nregression guard FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"\nregression guard: ok (tolerance {args.tolerance:.0%}, "
              f"min speedup {args.min_speedup}x vs {args.check})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
