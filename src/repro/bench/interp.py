"""Interpreter-tier microbenchmark CLI.

``python -m repro.bench.interp`` measures raw steps/second of both
execution tiers — the per-block closure decode cache (``closure``) and
the compile tier's flat register VM with kernel superinstructions
(``vm``) — on the same compute-heavy workload the
``benchmarks/test_interp_speed.py`` floor uses, and verifies the two
tiers produce identical results while timing them.

* ``--update [PATH]`` — merge an ``interp_tier`` section into the
  committed ``BENCH_pipeline.json`` (other keys are preserved;
  ``repro.bench.timing`` preserves this section in turn when the
  pipeline timer rewrites the file).
* ``--check PATH [--tolerance F] [--min-speedup S]`` — regression
  guard: exit non-zero if either tier's measured rate drops more than
  ``tolerance`` below the committed section, or if the vm/closure
  speedup falls below ``min-speedup``.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, Tuple

from repro.bench.timing import best_of, emit_perf_profile, floor_failures
from repro.core.framework import RunResult, run_program
from repro.workloads.generator import build_module
from repro.workloads.profiles import BenchmarkProfile

#: Same shape as ``benchmarks/test_interp_speed.py``: compute-only, no
#: instrumentation, so the dispatch loop is the entire cost (~0.9M
#: steps per run).
PROFILE = BenchmarkProfile(
    name="interp-speed",
    suite="CPU2017",
    language="C",
    iterations=3000,
    compute_ops=300,
    icalls_per_k=0,
    fnptr_writes_per_k=0,
    protected_calls_per_k=0,
    syscalls_per_k=0,
)

ROUNDS = 3
SECTION = "interp_tier"
DEFAULT_REPORT = "BENCH_pipeline.json"

#: Job-local hard floor: the compile tier's reason to exist.  Asserted
#: on fresh numbers so a uniformly slow machine cannot mask a collapse.
DEFAULT_MIN_SPEEDUP = 3.0


def _measure(tier: str, rounds: int) -> Tuple[float, RunResult]:
    """Best-of-``rounds`` steps/second for one tier."""

    def once() -> dict:
        module = build_module(PROFILE)
        start = time.perf_counter()
        result = run_program(module, design="baseline",
                             exec_option_overrides={"interp_tier": tier})
        elapsed = time.perf_counter() - start
        return {"steps_per_sec": result.steps / elapsed,
                "result": result}

    fastest = best_of(rounds, once, key="steps_per_sec")
    return float(fastest["steps_per_sec"]), fastest["result"]


def run_benchmark(rounds: int = ROUNDS) -> Dict[str, object]:
    """Measure both tiers; raises on any cross-tier result mismatch."""
    closure_rate, closure_result = _measure("closure", rounds)
    vm_rate, vm_result = _measure("vm", rounds)
    mismatches = [
        field for field in
        ("outcome", "exit_status", "steps", "cycles", "output")
        if getattr(vm_result, field) != getattr(closure_result, field)
    ]
    if mismatches:
        raise SystemExit(f"tier mismatch on {mismatches}: the compile "
                         f"tier diverged from the closure tier")
    return {
        "benchmark": (f"{PROFILE.iterations}x{PROFILE.compute_ops} "
                      f"compute (design=baseline)"),
        "steps": vm_result.steps,
        "rounds": rounds,
        "closure_steps_per_sec": round(closure_rate),
        "vm_steps_per_sec": round(vm_rate),
        "speedup": round(vm_rate / closure_rate, 2),
    }


def merge_section(path: str, section: Dict[str, object]) -> None:
    """Write ``section`` under :data:`SECTION` in the report at
    ``path``, preserving every other key (creates the file if absent)."""
    payload: Dict[str, object] = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    payload[SECTION] = section
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def check_regression(section: Dict[str, object], committed_path: str,
                     tolerance: float, min_speedup: float) -> list:
    """Regression failures vs the committed report (empty = pass)."""
    failures = []
    try:
        with open(committed_path, encoding="utf-8") as handle:
            committed = json.load(handle).get(SECTION)
    except (OSError, ValueError) as error:
        return [f"cannot read committed report {committed_path}: {error}"]
    if not committed:
        return [f"no {SECTION!r} section in {committed_path}"]
    keys = ("closure_steps_per_sec", "vm_steps_per_sec")
    for key in keys:
        if not committed.get(key):
            failures.append(f"{key}: no committed reference")
    failures += floor_failures(
        {key: section[key] for key in keys},
        {key: committed[key] for key in keys if committed.get(key)},
        tolerance, unit="steps/s")
    if float(section["speedup"]) < min_speedup:
        failures.append(
            f"speedup: {section['speedup']}x vm-over-closure is below "
            f"the {min_speedup}x floor (compile tier collapsed?)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.interp",
        description="Measure interpreter-tier throughput "
                    "(closure vs compile tier).")
    parser.add_argument("--rounds", type=int, default=ROUNDS,
                        help="best-of rounds per tier (default: "
                             "%(default)s)")
    parser.add_argument("--json", action="store_true",
                        help="print the section as JSON")
    parser.add_argument("--update", nargs="?", const=DEFAULT_REPORT,
                        default=None, metavar="PATH",
                        help=f"merge the interp_tier section into the "
                             f"report at PATH (default: {DEFAULT_REPORT})")
    parser.add_argument("--check", default=None, metavar="PATH",
                        help="exit non-zero if a tier's rate drops more "
                             "than --tolerance below the report at PATH")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop for --check "
                             "(default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="required vm-over-closure multiple, "
                             "asserted on the fresh numbers even "
                             "without --check (default with --check: "
                             f"{DEFAULT_MIN_SPEEDUP})")
    parser.add_argument("--perf-profile", default=None, metavar="PATH",
                        help="also fold the numbers into the unified "
                             "perf profile at PATH "
                             "(repro.perf.profile.write)")
    args = parser.parse_args(argv)

    section = run_benchmark(args.rounds)
    if args.json:
        print(json.dumps(section, indent=2))
    else:
        print(f"interpreter tiers, best of {args.rounds} "
              f"({section['benchmark']}, {section['steps']:,} steps):")
        print(f"  closure  {section['closure_steps_per_sec']:>12,} steps/s")
        print(f"  vm       {section['vm_steps_per_sec']:>12,} steps/s")
        print(f"  speedup  {section['speedup']:>11}x")

    if args.update:
        merge_section(args.update, section)
        print(f"updated {args.update} [{SECTION}]")

    if args.perf_profile:
        emit_perf_profile(args.perf_profile, "interp",
                          {SECTION: section})

    min_speedup = (args.min_speedup if args.min_speedup is not None
                   else DEFAULT_MIN_SPEEDUP)
    if args.check:
        failures = check_regression(section, args.check, args.tolerance,
                                    min_speedup)
        if failures:
            print("\nregression guard FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"\nregression guard: ok (tolerance {args.tolerance:.0%}, "
              f"min speedup {min_speedup}x vs {args.check})")
    elif args.min_speedup is not None:
        # Standalone hard floor (CI's cheap job-local sanity assert;
        # trajectory regressions are the unified perf gate's business).
        if float(section["speedup"]) < args.min_speedup:
            print(f"\nspeedup floor FAILED: {section['speedup']}x "
                  f"vm-over-closure is below the {args.min_speedup}x "
                  f"floor (compile tier collapsed?)")
            return 1
        print(f"\nspeedup floor: ok ({section['speedup']}x >= "
              f"{args.min_speedup}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
