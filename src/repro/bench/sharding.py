"""Sharded-verifier scale-out benchmark: ``python -m repro.bench.sharding``.

Measures aggregate validation throughput (msgs/sec) of the sharded
verifier runtime as the shard count grows, writing
``BENCH_sharding.json``.  Each sweep point spawns one *real OS worker
process per shard* (:class:`repro.core.shard_verifier.ShardWorker`):
the producer packs the hot-path HQ-CFI word stream for a population of
pids, routes each pid's stream to its shard's lock-free shared-memory
SPSC ring via the consistent-hash :class:`~repro.core.sharding.
ShardMap`, and the workers drain their rings through the standard
batched ``Verifier._dispatch_words`` path.

**Throughput model.**  The primary metric assumes one dedicated core
per shard — the deployment the scale-out targets — and is computed
from measured per-shard *busy CPU time*:

    ``msgs_per_sec = total_messages / max(busy_s over shards)``

where each worker accumulates ``time.process_time()`` only around
non-empty consume+dispatch sections (idle spins and control-pipe
checks excluded).  On a multi-core host this equals wall-clock
throughput; on a constrained host (CI containers here expose a single
core, where S processes merely time-slice) it still measures the real
quantity — how much CPU work the slowest shard needed — so the
scaling curve is honest rather than an artifact of oversubscription.
Wall-clock seconds are recorded alongside for reference.

Scaling is bounded by shard balance: with per-pid sticky routing, the
busiest shard's share of the message volume caps the speedup at
``1 / max_shard_fraction``.  The report records per-shard loads so a
balance regression is visible, not silently folded into the ratio.

Flags mirror ``repro.bench.msgpath``: ``--quick`` (CI-sized),
``--shards 1,2,4,8``, ``--json``, ``--out``, ``--check PATH``
(regression guard: per-point throughput floors *plus* the 2-shard /
1-shard scaling floor of ``--min-scaling``), ``--update-quick PATH``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from array import array
from typing import Dict, List

from repro.bench.msgpath import _cfi_stream
from repro.bench.timing import (emit_perf_profile, floor_failures,
                                reference_benchmarks,
                                update_quick_section)
from repro.core.messages import MESSAGE_WORDS, _MASK32, _MASK64
from repro.core.sharding import ShardMap
from repro.core.shard_verifier import ShardWorker

#: Shard counts of the full sweep (the quick/CI sweep uses 1,2).
FULL_SHARDS = (1, 2, 4, 8)
QUICK_SHARDS = (1, 2)

#: Total messages per sweep point (split across the pid population).
FULL_MESSAGES = 192_000
QUICK_MESSAGES = 48_000

#: Monitored-pid population.  Large enough that consistent hashing
#: spreads load close to evenly (the speedup ceiling is the inverse of
#: the busiest shard's share); small enough that per-pid policy state
#: stays negligible.
PIDS = 128
FIRST_PID = 1000

#: Messages per publish block, round-robined across pids so every
#: shard's ring fills concurrently instead of pid-by-pid.
PUBLISH_BLOCK = 512

#: The policy every worker runs: the paper's hot path.
POLICY = "hq-cfi"

#: Floor for the 2-shard / 1-shard scaling ratio enforced by --check.
MIN_SCALING_2 = 1.4


def pack_stream(pid: int, events) -> array:
    """Flatten (op, arg0, arg1, aux) events into stamped ring words."""
    words = array("Q", bytes(len(events) * MESSAGE_WORDS * 8))
    pid_high = (pid & _MASK32) << 32
    index = 0
    counter = 0
    for op, arg0, arg1, aux in events:
        counter += 1
        words[index] = (op & _MASK32) | pid_high
        words[index + 1] = arg0 & _MASK64
        words[index + 2] = arg1 & _MASK64
        words[index + 3] = (aux & _MASK32) | ((counter & _MASK32) << 32)
        index += MESSAGE_WORDS
    return words


def bench_point(num_shards: int, total_messages: int,
                pids: int = PIDS) -> Dict[str, object]:
    """One sweep point: real worker processes, real rings."""
    shard_map = ShardMap(num_shards)
    workers = [ShardWorker(i, POLICY) for i in range(num_shards)]
    try:
        per_pid = max(1, total_messages // pids)
        streams: List[tuple] = []   # (worker, words memoryview)
        for i in range(pids):
            pid = FIRST_PID + i
            worker = workers[shard_map.assign(i)]
            worker.register(pid)
            words = pack_stream(pid, _cfi_stream(per_pid))
            streams.append((worker, memoryview(words)))
        published_messages = sum(len(w) for _, w in streams) \
            // MESSAGE_WORDS

        wall_start = time.perf_counter()
        offsets = [0] * len(streams)
        remaining = set(range(len(streams)))
        block = PUBLISH_BLOCK * MESSAGE_WORDS
        while remaining:
            progressed = False
            for index in sorted(remaining):
                worker, words = streams[index]
                offset = offsets[index]
                end = min(len(words), offset + block)
                published = worker.publish(words[offset:end])
                if published:
                    progressed = True
                    offsets[index] = offset + published
                    if offsets[index] >= len(words):
                        remaining.discard(index)
            if not progressed:
                time.sleep(0.0002)   # every ring full: let workers drain
        reports = [worker.stop() for worker in workers]
        wall_s = time.perf_counter() - wall_start
    finally:
        for worker in workers:
            worker.close()

    if any(report is None for report in reports):
        raise RuntimeError(f"shard worker did not report "
                           f"(shards={num_shards})")
    drained = sum(report["drained"] for report in reports)
    if drained != published_messages:
        raise RuntimeError(
            f"drained {drained} != published {published_messages} "
            f"(shards={num_shards})")
    violations = sum(len(vs) for report in reports
                     for vs in report["violations"].values())
    busy = [report["busy_s"] for report in reports]
    busy_max = max(busy) or 1e-9
    return {
        "shards": num_shards,
        "messages": drained,
        "pids": pids,
        "msgs_per_sec": drained / busy_max,
        "busy_s_max": busy_max,
        "busy_s_total": sum(busy),
        "wall_s": wall_s,
        "violations": violations,
        "per_shard": [{"shard": report_index,
                       "drained": report["drained"],
                       "busy_s": report["busy_s"],
                       "batches": report["batches"]}
                      for report_index, report in enumerate(reports)],
    }


def run_suite(shard_counts, total_messages: int
              ) -> Dict[str, Dict[str, object]]:
    benchmarks: Dict[str, Dict[str, object]] = {}
    for count in shard_counts:
        benchmarks[f"shards:{count}"] = bench_point(count, total_messages)
    return benchmarks


def scaling_table(benchmarks: Dict[str, Dict[str, object]]
                  ) -> Dict[str, float]:
    """Aggregate-throughput ratios relative to the 1-shard point."""
    base = benchmarks.get("shards:1", {}).get("msgs_per_sec")
    if not base:
        return {}
    return {key: round(float(entry["msgs_per_sec"]) / float(base), 3)
            for key, entry in benchmarks.items()}


def build_report(benchmarks: Dict[str, Dict[str, object]],
                 total_messages: int, quick: bool) -> dict:
    return {
        "harness": "repro.bench.sharding",
        "quick": quick,
        "messages": total_messages,
        "pids": PIDS,
        "policy": POLICY,
        "throughput_model": "total messages / max per-shard busy CPU "
                            "seconds (dedicated core per shard)",
        "benchmarks": benchmarks,
        "scaling": scaling_table(benchmarks),
    }


def scaling_floor_failures(benchmarks: Dict[str, Dict[str, object]],
                           min_scaling: float) -> List[str]:
    """Job-local hard floor: the current run's 2-shard point must
    deliver at least ``min_scaling`` times its own 1-shard point — the
    scale-out's reason to exist, asserted on fresh numbers so a
    uniformly slow machine cannot mask a lost speedup."""
    two = scaling_table(benchmarks).get("shards:2")
    if two is not None and two < min_scaling:
        return [f"shards:2 scaling {two:.2f}x is below the "
                f"{min_scaling:.2f}x floor over shards:1"]
    return []


def check_regression(benchmarks: Dict[str, Dict[str, object]],
                     committed_path: str, tolerance: float,
                     min_scaling: float, quick: bool) -> List[str]:
    """Guard both absolute throughput and the scaling shape: the
    per-point tolerance floors vs the committed report (its
    ``quick_benchmarks`` section for quick runs) plus the 2-shard
    scaling floor."""
    failures = scaling_floor_failures(benchmarks, min_scaling)
    with open(committed_path) as fh:
        committed = json.load(fh)
    reference_set = reference_benchmarks(committed, quick)
    failures += floor_failures(
        {key: entry.get("msgs_per_sec")
         for key, entry in benchmarks.items()},
        {key: entry.get("msgs_per_sec")
         for key, entry in reference_set.items()},
        tolerance)
    return failures


def format_human(report: dict) -> str:
    lines = ["sharded-verifier aggregate throughput "
             "(msgs/sec, dedicated-core model)", ""]
    scaling = report.get("scaling", {})
    for key, entry in report["benchmarks"].items():
        ratio = scaling.get(key)
        extra = f"   {ratio:.2f}x vs 1 shard" if ratio else ""
        loads = "/".join(str(shard["drained"])
                         for shard in entry["per_shard"])
        lines.append(f"  {key:<9}  {entry['msgs_per_sec']:>12,.0f}{extra}"
                     f"   (busy {entry['busy_s_max']:.3f}s, "
                     f"wall {entry['wall_s']:.3f}s, loads {loads})")
    return "\n".join(lines)


def _shard_list(value: str) -> List[int]:
    try:
        counts = sorted({int(item) for item in value.split(",") if item})
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid shard list {value!r} (want e.g. '1,2,4')")
    if not counts or any(count < 1 for count in counts):
        raise argparse.ArgumentTypeError("shard counts must be >= 1")
    return counts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.sharding",
        description="Benchmark sharded-verifier scale-out over "
                    "shared-memory SPSC rings (msgs/sec).")
    parser.add_argument("--quick", action="store_true",
                        help=f"CI-sized run ({QUICK_MESSAGES} messages, "
                             f"shards {','.join(map(str, QUICK_SHARDS))})")
    parser.add_argument("--shards", type=_shard_list, default=None,
                        help="comma-separated shard counts "
                             "(default: 1,2,4,8; quick: 1,2)")
    parser.add_argument("--messages", type=int, default=None,
                        help="override total messages per sweep point")
    parser.add_argument("--json", action="store_true",
                        help="print the JSON report on stdout")
    parser.add_argument("--out", default="BENCH_sharding.json",
                        help="report path (default: %(default)s; "
                             "'-' skips)")
    parser.add_argument("--check", default=None, metavar="PATH",
                        help="regression guard: fail on throughput drops "
                             "beyond --tolerance vs PATH, or 2-shard "
                             "scaling below --min-scaling")
    parser.add_argument("--tolerance", type=float, default=0.35,
                        help="allowed fractional throughput drop for "
                             "--check (default: %(default)s)")
    parser.add_argument("--min-scaling", type=float, default=None,
                        help="2-shard/1-shard scaling floor, asserted "
                             "on the fresh numbers even without "
                             "--check (default with --check: "
                             f"{MIN_SCALING_2})")
    parser.add_argument("--update-quick", default=None, metavar="PATH",
                        help="merge this --quick run's numbers into the "
                             "committed report at PATH as its "
                             "quick_benchmarks section")
    parser.add_argument("--perf-profile", default=None, metavar="PATH",
                        help="also fold the numbers into the unified "
                             "perf profile at PATH "
                             "(repro.perf.profile.write)")
    args = parser.parse_args(argv)
    if args.update_quick and not args.quick:
        parser.error("--update-quick requires --quick")

    shard_counts = args.shards or (list(QUICK_SHARDS) if args.quick
                                   else list(FULL_SHARDS))
    total_messages = args.messages or (QUICK_MESSAGES if args.quick
                                       else FULL_MESSAGES)

    benchmarks = run_suite(shard_counts, total_messages)
    report = build_report(benchmarks, total_messages, args.quick)

    if args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.json:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(format_human(report))

    if args.update_quick:
        update_quick_section(args.update_quick, benchmarks,
                             total_messages,
                             quick_scaling=scaling_table(benchmarks))

    if args.perf_profile:
        emit_perf_profile(args.perf_profile, "sharding", report,
                          quick=args.quick,
                          meta={"messages": total_messages})

    min_scaling = (args.min_scaling if args.min_scaling is not None
                   else MIN_SCALING_2)
    if args.check:
        failures = check_regression(benchmarks, args.check, args.tolerance,
                                    min_scaling, quick=args.quick)
        if failures:
            print("\nsharding regression detected:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 2
        print(f"\nregression guard: ok (tolerance {args.tolerance:.0%}, "
              f"min 2-shard scaling {min_scaling:.2f}x, "
              f"vs {args.check})")
    elif args.min_scaling is not None:
        # Standalone hard floor (CI's cheap job-local sanity assert;
        # trajectory regressions are the unified perf gate's business).
        failures = scaling_floor_failures(benchmarks, args.min_scaling)
        if failures:
            print("\nscaling floor FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 2
        print(f"\nscaling floor: ok "
              f"(>= {args.min_scaling:.2f}x at 2 shards)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
