"""Table 5: successful RIPE exploits per CFI design and overflow origin.

Paper values::

    Design           BSS  Data  Heap  Stack  Total
    Baseline         214   234   234    272    954
    Clang/LLVM CFI    60    60    60     10    190
    CCFI               0     0     0      0      0
    CPI               10    10    10     10     40
    HQ-CFI-SfeStk     10    10    10      0     30
    HQ-CFI-RetPtr      0     0     0      0      0

Every attack is executed on the simulated machine (ASLR disabled,
execve exempt from synchronization, as in section 5.2); counts come
from which exploits reach their marker system call undetected.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.attacks.ripe import run_ripe

#: Table 5's designs, top to bottom.
TABLE5_DESIGNS = ["baseline", "clang-cfi", "ccfi", "cpi",
                  "hq-sfestk", "hq-retptr"]

#: The paper's reported values (BSS, Data, Heap, Stack).
PAPER_TABLE5 = {
    "baseline": {"bss": 214, "data": 234, "heap": 234, "stack": 272},
    "clang-cfi": {"bss": 60, "data": 60, "heap": 60, "stack": 10},
    "ccfi": {"bss": 0, "data": 0, "heap": 0, "stack": 0},
    "cpi": {"bss": 10, "data": 10, "heap": 10, "stack": 10},
    "hq-sfestk": {"bss": 10, "data": 10, "heap": 10, "stack": 0},
    "hq-retptr": {"bss": 0, "data": 0, "heap": 0, "stack": 0},
}


def table5(designs: Optional[List[str]] = None,
           dedup: bool = True,
           jobs: Optional[int] = None) -> Dict[str, Dict[str, int]]:
    """Run the RIPE matrix under every design (one unit per design)."""
    from repro.bench.parallel import parallel_map
    designs = designs or TABLE5_DESIGNS
    counts = parallel_map(run_ripe,
                          [(design, "model", dedup) for design in designs],
                          jobs=jobs, star=True)
    return dict(zip(designs, counts))


def format_table5(rows: Dict[str, Dict[str, int]]) -> str:
    lines = [f"{'Design':<14} {'BSS':>5} {'Data':>5} {'Heap':>5} "
             f"{'Stack':>5} {'Total':>6}"]
    for design, counts in rows.items():
        total = sum(counts.values())
        lines.append(f"{design:<14} {counts['bss']:>5} {counts['data']:>5} "
                     f"{counts['heap']:>5} {counts['stack']:>5} {total:>6}")
    return "\n".join(lines)
