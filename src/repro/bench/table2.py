"""Table 2: comparison of IPC primitives.

Reproduces the micro-benchmark of section 2.3: repeatedly send messages
through each primitive and report the mean per-send time, alongside the
two qualitative properties (append-only, asynchronous validation).
The per-send times come out of the same cost model the performance
figures use, so this table doubles as that model's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.messages import pointer_check
from repro.ipc.registry import create_channel
from repro.sim.cycles import CLOCK_GHZ
from repro.sim.process import Process

#: Primitives in Table 2's order; ``model`` is our addition (the -MODEL
#: configurations); ``sim``/``uarch`` are the same implementation.
TABLE2_ORDER = ["mq", "pipe", "socket", "shm", "lwc", "fpga", "uarch"]


@dataclass
class Table2Row:
    """One primitive's measured characteristics."""

    primitive: str
    append_only: bool
    async_validation: bool
    primary_cost: str
    send_ns: float


def measure_send_ns(primitive: str, sends: int = 1000) -> float:
    """Mean per-send time over ``sends`` messages, in nanoseconds."""
    channel = create_channel(primitive, capacity=sends + 16)
    process = Process(f"bench-{primitive}")
    message = pointer_check(0x1000, 0x2000)
    for _ in range(sends):
        channel.send(process, message)
    channel.receive_all()
    total_cycles = (process.cycles.user + process.cycles.ipc
                    + process.cycles.syscall + process.cycles.wait)
    return total_cycles / sends / CLOCK_GHZ


def table2(sends: int = 1000) -> List[Table2Row]:
    """Generate all Table 2 rows."""
    rows = []
    for primitive in TABLE2_ORDER:
        channel = create_channel(primitive)
        rows.append(Table2Row(
            primitive=primitive,
            append_only=channel.append_only,
            async_validation=channel.async_validation,
            primary_cost=channel.primary_cost,
            send_ns=measure_send_ns(primitive, sends)))
    return rows


def format_table2(rows: List[Table2Row]) -> str:
    """Render rows the way the paper prints Table 2."""
    lines = [f"{'IPC Primitive':<16} {'Append':>6} {'Async':>6} "
             f"{'Primary Cost':<14} {'Time (ns)':>10}"]
    for row in rows:
        lines.append(
            f"{row.primitive:<16} {'yes' if row.append_only else 'no':>6} "
            f"{'yes' if row.async_validation else 'no':>6} "
            f"{row.primary_cost:<14} {row.send_ns:>10.1f}")
    return "\n".join(lines)
