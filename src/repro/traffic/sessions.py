"""Session scripts and traffic phases for the production traffic tier.

A *session* is one simulated client connection served by a monitored
worker process: a stream of runtime events (pointer defines/checks,
policy events, synchronized system calls) ending in an exit.  Scripts
are composed from the same ingredients as the single-program benches —
the webserver archetype of :mod:`repro.workloads.webserver` (handler
table defined at startup, every request dispatches through it and
responds with one write syscall) with event densities taken from
:mod:`repro.workloads.profiles` — so the traffic mix has the same
per-thousand-iterations character as the Table 4 benchmarks.

A *phase* is a stretch of the run with fixed arrival/behaviour
parameters, in the wiscsee aging+traffic style: a run is a list of
phases (age the system, warm up, steady state, overload surge, drain),
each contributing its ticks to one continuous simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from random import Random
from typing import List, Optional, Sequence, Tuple

from repro.sim.cpu import SYS_READ, SYS_WIN, SYS_WRITE
from repro.workloads.profiles import get_profile

# Event tuples interpreted by the engine:
#   ("define", slot, value)   hq_pointer_define
#   ("check", slot, value)    hq_pointer_check (wrong value = attack)
#   ("event", kind, value)    hq_event (policy event traffic)
#   ("syscall", num, arg)     synchronized system call (barrier!)
#   ("fork",)                 SYS_FORK; the child runs a worker script
#   ("exit", status)          SYS_EXIT; ends the session
Event = Tuple

#: Per-session data-segment layout: each session's handler table lives
#: at the same virtual addresses (policy contexts are per-pid, so
#: sessions never alias each other's slots).
TABLE_BASE = 0x5000
TABLE_SLOTS = 3
HANDLER_BASE = 0x1000

#: Benchmark profiles the request mixes draw densities from.  nginx is
#: the paper's server case study; the SPEC entries bracket it with an
#: indirect-call-heavy and a compute-heavy character.
ARCHETYPES = ("nginx", "400.perlbench", "401.bzip2")


def _handler(slot: int) -> int:
    return HANDLER_BASE + 0x40 * slot


def build_session(rng: Random, archetype: str = "nginx",
                  requests: int = 4, attack: bool = False) -> List[Event]:
    """Compose one session script.

    The session defines its handler table, then serves ``requests``
    requests: each checks the dispatched handler pointer (the CFI
    check), emits profile-proportional policy events, and responds with
    a synchronized write.  An *attack* session corrupts one dispatch —
    its check carries a value the verifier never saw defined, which
    must end in a detected kill at the next syscall barrier, never in
    the response being written.
    """
    profile = get_profile(archetype)
    per_request_events = max(1, round(
        (profile.icalls_per_k + profile.fnptr_writes_per_k) / 100))
    script: List[Event] = [
        ("define", TABLE_BASE + slot, _handler(slot))
        for slot in range(TABLE_SLOTS)
    ]
    corrupt_at = rng.randrange(requests) if attack else -1
    for request in range(requests):
        slot = rng.randrange(TABLE_SLOTS)
        value = _handler(slot)
        if request == corrupt_at:
            # The overflow of webserver.py, in event form: the table
            # slot now holds an attacker-chosen address.
            value = 0x666000 + rng.randrange(16)
        script.append(("syscall", SYS_READ, request))
        script.append(("check", TABLE_BASE + slot, value))
        for _ in range(per_request_events):
            script.append(("event", 7, rng.randrange(1 << 16)))
        if request == corrupt_at:
            # The hijacked dispatch heads for the attack marker: the
            # barrier must kill this session before SYS_WIN executes.
            script.append(("syscall", SYS_WIN, 0))
        else:
            script.append(("syscall", SYS_WRITE, 200 + slot))
    script.append(("exit", 0))
    return script


def build_worker_script(rng: Random, parent_slots: Sequence[int],
                        work: int = 2) -> List[Event]:
    """Script for a forked child: the fork-heavy churn ingredient.

    The child inherits the parent's policy context (the kernel clones
    it on fork), so checking a parent-defined table slot must pass;
    after a little work it exits, which is what keeps the pid table
    churning.
    """
    script: List[Event] = []
    for _ in range(work):
        slot = rng.choice(list(parent_slots))
        script.append(("check", TABLE_BASE + slot, _handler(slot)))
        script.append(("syscall", SYS_WRITE, 0x300))
    script.append(("exit", 0))
    return script


@dataclass(frozen=True)
class Phase:
    """One stretch of the run with fixed traffic parameters."""

    name: str
    ticks: int
    #: New sessions offered per tick (admission control may refuse).
    arrivals_per_tick: float = 1.0
    #: Fraction of sessions that are attacks (must die detected).
    attack_fraction: float = 0.0
    #: Probability an admitted session forks a worker child per request.
    fork_probability: float = 0.0
    #: Requests per session in this phase.
    requests: int = 4
    #: Archetype mix (cycled deterministically per arrival).
    archetypes: Tuple[str, ...] = ARCHETYPES


#: Named phase presets, wiscsee-style: ``age`` builds up long-lived
#: resident sessions before measurement, ``surge`` offers arrivals well
#: past validation capacity (the overload the watermarks exist for),
#: ``drain`` stops arrivals and lets the backlog clear.
PRESETS = {
    "age": Phase("age", ticks=50, arrivals_per_tick=0.5,
                 fork_probability=0.2, requests=8),
    "warmup": Phase("warmup", ticks=50, arrivals_per_tick=1.0,
                    requests=3),
    "steady": Phase("steady", ticks=200, arrivals_per_tick=2.0,
                    attack_fraction=0.05, fork_probability=0.1),
    "surge": Phase("surge", ticks=100, arrivals_per_tick=8.0,
                   attack_fraction=0.05, fork_probability=0.1,
                   requests=6),
    "drain": Phase("drain", ticks=80, arrivals_per_tick=0.0),
}

DEFAULT_PHASES = "warmup,steady,surge,drain"


def parse_phases(spec: Optional[str]) -> List[Phase]:
    """Parse ``name[:ticks][,name[:ticks]...]`` into phase objects.

    Names come from :data:`PRESETS`; an optional ``:ticks`` suffix
    overrides the preset's length (``surge:300``).
    """
    phases: List[Phase] = []
    for token in (spec or DEFAULT_PHASES).split(","):
        token = token.strip()
        if not token:
            continue
        name, _, ticks = token.partition(":")
        if name not in PRESETS:
            raise ValueError(f"unknown phase {name!r}; "
                             f"choose from {sorted(PRESETS)}")
        phase = PRESETS[name]
        if ticks:
            phase = replace(phase, ticks=int(ticks))
        phases.append(phase)
    if not phases:
        raise ValueError("empty phase list")
    return phases
