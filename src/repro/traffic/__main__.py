"""CLI for the production traffic tier.

Examples::

    # Default phased run (warmup, steady, surge, drain), inline verifier.
    PYTHONPATH=src python -m repro.traffic

    # The CI soak: 5000 sessions over 4 verifier shards, JSON report.
    PYTHONPATH=src python -m repro.traffic --sessions 5000 --shards 4 \\
        --json BENCH_traffic.json

    # Quick smoke with SLO gates (what the CI traffic job runs).
    PYTHONPATH=src python -m repro.traffic --quick --json traffic_report.json

    # Chaos mid-churn: crash the verifier at tick 120, a shard at 260.
    PYTHONPATH=src python -m repro.traffic --shards 4 \\
        --faults verifier-crash:120,shard-crash:260

Exit status is non-zero when an SLO gate fails: p99 validation lag
above ``--max-p99-lag``, any leaked per-pid verifier entry after GC,
any leaked shared-memory segment, or any attack session that escaped.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Tuple

from repro.ipc.shared_memory import owned_segment_names
from repro.traffic.engine import TrafficConfig, run_traffic
from repro.traffic.sessions import DEFAULT_PHASES, PRESETS

FAULT_KINDS = ("verifier-crash", "shard-crash", "channel-corrupt")


def parse_faults(spec: str) -> List[Tuple[int, str]]:
    """Parse ``kind:tick[,kind:tick...]`` into (tick, kind) pairs."""
    faults: List[Tuple[int, str]] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        kind, _, tick = token.partition(":")
        if kind not in FAULT_KINDS:
            raise SystemExit(f"unknown fault {kind!r}; "
                             f"choose from {FAULT_KINDS}")
        faults.append((int(tick or 0), kind))
    return faults


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.traffic",
        description="multi-tenant traffic soak for the HerQules monitor")
    parser.add_argument("--sessions", type=int, default=500,
                        help="total sessions to offer (default 500)")
    parser.add_argument("--duration", type=int, default=0,
                        help="hard tick cap (default: derived from phases)")
    parser.add_argument("--phases", default=DEFAULT_PHASES,
                        help=f"phase list, e.g. 'steady:300,surge:100' "
                             f"(presets: {','.join(sorted(PRESETS))})")
    parser.add_argument("--shards", type=int, default=None,
                        help="verifier shards (default: inline single)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--faults", default="",
                        help="injected faults, kind:tick list "
                             "(verifier-crash, shard-crash, channel-corrupt)")
    parser.add_argument("--quick", action="store_true",
                        help="small CI-sized run")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the SLO report to PATH")
    parser.add_argument("--max-p99-lag", type=float, default=1024.0,
                        help="SLO gate: max p99 barrier-entry validation "
                             "lag, in messages (default 1024, under the "
                             "barrier_timeout_ticks*poll_budget kill "
                             "ceiling — above it admission failed to "
                             "shed before sessions started dying)")
    parser.add_argument("--no-obs", action="store_true",
                        help="disable the observability layer")
    parser.add_argument("--perf-profile", default=None, metavar="PATH",
                        help="also fold the SLO numbers into the "
                             "unified perf profile at PATH "
                             "(repro.perf.profile.write)")
    args = parser.parse_args(argv)

    sessions = args.sessions
    phases = args.phases
    if args.quick:
        sessions = min(sessions, 400)
        if args.phases == DEFAULT_PHASES:
            # Shorter steady state, longer surge: the quick run must
            # still push traffic into the defer/shed watermarks.
            phases = "warmup:20,steady:60,surge:80,drain:40"

    config = TrafficConfig(
        sessions=sessions,
        duration=args.duration,
        phases=phases,
        shards=args.shards,
        seed=args.seed,
        faults=tuple(parse_faults(args.faults)),
        observe=not args.no_obs)

    start = time.perf_counter()
    report = run_traffic(config)
    wall_s = time.perf_counter() - start
    leaked_segments = sorted(owned_segment_names())
    report["leaks"]["shm_segments"] = len(leaked_segments)
    report["wall_s"] = round(wall_s, 3)

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.perf_profile:
        from repro.bench.timing import emit_perf_profile
        emit_perf_profile(args.perf_profile, "traffic", report,
                          quick=args.quick,
                          meta={"sessions": sessions,
                                "shards": args.shards or 1,
                                "seed": args.seed})

    totals = report["totals"]
    slo = report["slo"]
    gc = report["gc"]
    print(f"traffic: {totals['offered']} offered / "
          f"{totals['completed']} completed / {totals['killed']} killed / "
          f"{totals['shed']} shed ({totals['forks']} forks) "
          f"in {slo['ticks']} ticks [{wall_s:.2f}s wall]")
    print(f"  lag p50/p99/max: {slo['validation_lag_p50']:.0f}/"
          f"{slo['validation_lag_p99']:.0f}/{slo['validation_lag_max']:.0f} "
          f"msgs; kills/sec {slo['kills_per_sec']}; "
          f"shed/sec {slo['shed_per_sec']}")
    print(f"  attacks: {totals['attacks']['offered']} offered, "
          f"{totals['attacks']['detected']} detected, "
          f"{totals['attacks']['escaped']} escaped, "
          f"{totals['attacks']['wins']} wins")
    print(f"  gc: {gc['reclaimed_pids']} pids reclaimed, peak table "
          f"{gc['peak_pid_table']}, final {gc['final_pid_table']}; "
          f"restarts {totals['verifier_restarts']}; "
          f"faults {totals['faults_fired'] or 'none'}")

    failures: List[str] = []
    if slo["validation_lag_p99"] > args.max_p99_lag:
        failures.append(f"p99 validation lag {slo['validation_lag_p99']} "
                        f"> {args.max_p99_lag}")
    if report["leaks"]["pid_entries"]:
        failures.append(f"{report['leaks']['pid_entries']} leaked per-pid "
                        f"verifier entries after GC")
    if report["leaks"]["kernel_processes"]:
        failures.append(f"{report['leaks']['kernel_processes']} unreaped "
                        f"kernel processes")
    if leaked_segments:
        failures.append(f"leaked shm segments: {leaked_segments}")
    if totals["attacks"]["escaped"] or totals["attacks"]["wins"]:
        failures.append("attack sessions escaped enforcement")
    if totals["duration_capped"]:
        failures.append("run hit the duration cap with sessions pending")
    if failures:
        for failure in failures:
            print(f"SLO FAIL: {failure}", file=sys.stderr)
        return 1
    print("  SLO: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
