"""Production traffic tier: multi-tenant session engine.

``python -m repro.traffic`` runs a long-lived, churn-heavy multi-tenant
scenario — thousands of monitored sessions multiplexed over one
verifier (inline or sharded) — with admission control, load shedding,
epoch-based GC of per-pid verifier state, and optional chaos faults
injected mid-churn.  See DESIGN.md, "Production traffic & overload".
"""

from repro.traffic.engine import (TICK_NS, TrafficConfig, TrafficEngine,
                                  run_traffic)
from repro.traffic.sessions import (DEFAULT_PHASES, PRESETS, Phase,
                                    build_session, parse_phases)

__all__ = [
    "TICK_NS", "TrafficConfig", "TrafficEngine", "run_traffic",
    "DEFAULT_PHASES", "PRESETS", "Phase", "build_session", "parse_phases",
]
