"""The multi-tenant traffic engine: thousands of sessions, one monitor.

This is the production-traffic tier the NGINX case study implies:
instead of one monitored program run end to end (``run_program``), a
single kernel + verifier pair carries a churning population of session
processes — each with its own pid, policy context, and runtime library
instance — all multiplexed over one AppendWrite channel.  The engine
is deliberately built from the *same* components as the single-program
path (``HQRuntime``, ``HQKernelModule``, ``Kernel``, ``Verifier`` /
``ShardedVerifier``), so what it stresses is the real protocol:

* **fork-heavy churn** — sessions fork short-lived workers through the
  kernel's ``SYS_FORK`` path (context clone, independent exit);
* **backpressure** — the verifier gets a bounded dispatch budget per
  poll (the slow-verifier model), so sustained traffic builds a real
  backlog that the kernel's bounded epochs, the runtime's backoff, and
  admission control all react to;
* **admission control** — new sessions pass through
  :class:`repro.sim.kernel.AdmissionController` watermarks and are
  admitted, deferred, or shed;
* **epoch GC** — exited sessions' verifier state is reclaimed on a
  fixed epoch cadence, keeping the pid table bounded;
* **chaos mid-churn** — verifier crashes, shard crashes, and channel
  corruption can be injected at chosen ticks while sessions are in
  flight, and must end in tolerated / detected-kill outcomes.

Time is the *tick*: one engine loop iteration, :data:`TICK_NS` of
simulated time, charged to a dedicated clock process the observer
binds to.  All rates (kills/sec, shed/sec) are per simulated second.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cfi.hq_cfi import HQCFIPolicy
from repro.core.runtime import HQRuntime
from repro.core.verifier import Verifier
from repro.ipc.registry import create_channel
from repro.sim.cpu import (ProcessKilledError, SYS_EXIT, SYS_FORK, SYS_WIN)
from repro.sim.cycles import AccountingMode, ns_to_cycles
from repro.sim.kernel import (ADMIT, AdmissionController, DEFER,
                              HQKernelModule, Kernel, SHED,
                              shard_scoped_kill)
from repro.sim.process import Process
from repro.traffic.sessions import (DEFAULT_PHASES, Phase, TABLE_SLOTS,
                                    build_session, build_worker_script,
                                    parse_phases)

REPORT_VERSION = 1

#: Simulated duration of one engine tick.
TICK_NS = 10_000.0

#: Unknown opcode injected by the channel-corruption fault; the wire
#: codec cannot decode it, so the verifier must fail closed on it.
_CORRUPT_OPCODE = 0x7FFF_FFFF


class _SessionInterp:
    """Minimal interpreter stand-in a session's :class:`HQRuntime` needs.

    The runtime library reads ``interpreter.process`` on every send and
    ``interpreter.call_stack`` in the retptr helpers (unused here);
    sessions drive the runtime's public entry points directly, so no
    instruction interpreter is involved.
    """

    __slots__ = ("process", "call_stack")

    def __init__(self, process: Process) -> None:
        self.process = process
        self.call_stack: list = []


class _TrafficLiaison:
    """Engine-side verifier wrapper: bounded polls + restart budget.

    ``poll_budget`` caps messages dispatched per poll — the
    slow-verifier model that makes validation lag (and therefore the
    admission watermarks) real under sustained traffic.  An unbudgeted
    drain is still available via :meth:`flush` for end-of-run cleanup.

    ``maybe_restart`` gives the kernel module the section 3.4 recovery
    path after an injected verifier crash: up to ``restart_budget``
    replacement bring-ups, each conservatively condemning pids whose
    in-flight messages were lost.  Only pids the kernel still tracks
    are re-registered — the pid-churn guarantee of
    :meth:`Verifier.restart` is exercised, not bypassed.
    """

    def __init__(self, inner, poll_budget: Optional[int] = None,
                 restart_budget: int = 2) -> None:
        self._inner = inner
        self.poll_budget = poll_budget
        self.restarts_left = restart_budget

    def poll(self, max_messages: Optional[int] = None) -> int:
        budget = self.poll_budget if max_messages is None else max_messages
        return self._inner.poll(budget)

    def flush(self) -> int:
        """Unbudgeted drain: dispatch everything still queued."""
        total = 0
        while True:
            processed = self._inner.poll(None)
            if not processed:
                return total
            total += processed

    def maybe_restart(self, kernel_module) -> bool:
        if self.restarts_left <= 0:
            return False
        self.restarts_left -= 1
        self._inner.restart(sorted(kernel_module.contexts))
        return True

    def __getattr__(self, name):
        return getattr(self._inner, name)


@dataclass
class TrafficConfig:
    """Knobs for one traffic run (defaults = the CI soak shape)."""

    sessions: int = 500
    phases: str = DEFAULT_PHASES
    shards: Optional[int] = None
    seed: int = 1
    #: Hard tick cap; 0 derives one from the phase list (hang guard).
    duration: int = 0
    channel: str = "model"
    channel_capacity: int = 1 << 14
    #: Messages the verifier may dispatch per engine tick — its
    #: validation capacity, and the quantity overload is measured
    #: against.  Sessions blocked at a barrier wait (without running)
    #: until a tick's budgeted drain reaches their token, so sustained
    #: production above this rate builds a real, persistent backlog.
    poll_budget: int = 192
    #: Barrier epoch budget, in polls, for the *last-chance* burst: a
    #: session blocked longer than ``barrier_timeout_ticks`` gets one
    #: aggressive kernel barrier (``epoch_polls`` budgeted polls) and
    #: is epoch-timeout killed if its token still does not surface.
    epoch_polls: int = 8
    #: Ticks a session may sit blocked at one barrier before the
    #: last-chance burst.  The kill ceiling is therefore roughly
    #: ``(barrier_timeout_ticks + epoch_polls) * poll_budget`` messages
    #: of backlog ahead of the token.
    barrier_timeout_ticks: int = 6
    #: Admission watermarks, in validation-load messages, against the
    #: peak barrier-entry lag observed this tick.  Deferrals begin at
    #: ~1.3x capacity and shedding at ~2.7x, both far below the kill
    #: ceiling: admission reacts to overload well before it turns into
    #: epoch-timeout kills of well-behaved sessions.
    defer_watermark: int = 256
    shed_watermark: int = 512
    max_deferrals: int = 8
    #: Epoch GC: advance every ``gc_interval`` ticks, retain exited
    #: pids' state for ``gc_epochs`` epochs.
    gc_interval: int = 8
    gc_epochs: int = 4
    #: Session events executed per active session per tick.
    events_per_tick: int = 2
    #: Injected faults: (tick, kind) with kind in
    #: {"verifier-crash", "shard-crash", "channel-corrupt"}.
    faults: Tuple[Tuple[int, str], ...] = ()
    restart_budget: int = 4
    observe: bool = True


@dataclass
class _Session:
    process: Process
    runtime: HQRuntime
    script: List[tuple]
    is_attack: bool = False
    is_worker: bool = False
    cursor: int = 0
    outcome: Optional[str] = None   # completed / killed / shed
    kill_reason: Optional[str] = None
    fork_probability: float = 0.0
    #: The barrier event this session is blocked at (syscall / fork /
    #: exit tuple); ``None`` while runnable.  The synchronization
    #: message is already sent — the session waits for the verifier's
    #: token before the kernel lets the call proceed.
    barrier: Optional[tuple] = None
    barrier_ticks: int = 0


class TrafficEngine:
    """Drives one multi-tenant traffic run to completion."""

    def __init__(self, config: TrafficConfig) -> None:
        self.config = config
        self.rng = Random(config.seed)
        self.phases = parse_phases(config.phases)
        self.observer = None
        if config.observe:
            from repro.obs.observer import Observer
            self.observer = Observer()

        #: The clock process: never monitored, charged TICK_NS per
        #: tick; the observer derives sim time from it.
        self.clock = Process(name="traffic-clock")
        if self.observer is not None:
            self.observer.bind_clock(self.clock)

        if config.shards is not None and config.shards > 1:
            from repro.core.shard_verifier import ShardedVerifier
            inner = ShardedVerifier(HQCFIPolicy, config.shards)
        else:
            inner = Verifier(HQCFIPolicy)
        inner.observer = self.observer
        inner.gc_epochs = config.gc_epochs
        self._inner = inner
        self.liaison = _TrafficLiaison(inner, config.poll_budget,
                                       config.restart_budget)
        self.channel = create_channel(config.channel,
                                      capacity=config.channel_capacity)
        self.channel.observer = self.observer
        self.channel._on_full = lambda ch: self.liaison.poll()
        inner.attach_channel(self.channel)

        self.hq = HQKernelModule(self.liaison,
                                 epoch_polls=config.epoch_polls)
        self.hq.observer = self.observer
        self.hq.admission = AdmissionController(
            defer_watermark=config.defer_watermark,
            shed_watermark=config.shed_watermark,
            max_deferrals=config.max_deferrals)
        self.kernel = Kernel(self.hq)

        # Run state.
        self.active: List[_Session] = []
        self.deferred: List[Tuple[_Session, int]] = []
        self.tick = 0
        self.offered = 0
        self.counts: Dict[str, int] = {
            "completed": 0, "killed": 0, "shed": 0, "forks": 0,
            "attacks_offered": 0, "attacks_detected": 0,
            "attacks_escaped": 0,
        }
        self.kill_reasons: Dict[str, int] = {}
        self.lag_samples: List[int] = []
        self.wait_samples: List[int] = []
        self.lifetimes: List[float] = []
        self.peak_pid_table = 0
        self.peak_active = 0
        self._faults = sorted(config.faults)
        self._faults_fired: List[str] = []
        self._arrival_debt = 0.0
        #: Peak barrier-entry validation lag seen this tick — the
        #: pressure signal admission decisions are made against.
        #: Barriers drain the whole backlog while waiting for their
        #: token, so an instantaneous load reading between barriers is
        #: always near zero; the lag a session actually experiences is
        #: the backlog it finds when it *enters* a barrier.
        self._tick_peak_lag = 0
        self._closed = False

    # -- session lifecycle ---------------------------------------------------

    def _new_session(self, phase: Phase) -> _Session:
        archetype = phase.archetypes[self.offered % len(phase.archetypes)]
        is_attack = self.rng.random() < phase.attack_fraction
        process = Process(name="session")
        session = _Session(
            process=process,
            runtime=self._make_runtime(process),
            script=build_session(self.rng, archetype, phase.requests,
                                 attack=is_attack),
            is_attack=is_attack,
            fork_probability=phase.fork_probability)
        self.offered += 1
        if is_attack:
            self.counts["attacks_offered"] += 1
        return session

    def _make_runtime(self, process: Process) -> HQRuntime:
        runtime = HQRuntime(self.channel)
        runtime.interpreter = _SessionInterp(process)
        runtime.drain_hook = self.liaison.poll
        runtime.on_fail_closed = self.hq.record_fail_closed
        return runtime

    def _admit(self, session: _Session, deferrals: int) -> str:
        verdict = self.hq.try_enable(session.process, deferrals,
                                     load=self._tick_peak_lag)
        if verdict == ADMIT:
            self.kernel.attach(session.process)
            self.active.append(session)
        elif verdict == DEFER:
            self.deferred.append((session, deferrals + 1))
        else:  # SHED
            session.outcome = "shed"
            self.counts["shed"] += 1
        return verdict

    def _finish(self, session: _Session, outcome: str,
                reason: Optional[str] = None) -> None:
        session.outcome = outcome
        session.kill_reason = reason
        pid = session.process.pid
        if outcome == "killed":
            self.counts["killed"] += 1
            self.kill_reasons[reason or "unknown"] = \
                self.kill_reasons.get(reason or "unknown", 0) + 1
            # The kernel reaps a killed process: drop its module
            # context and unregister it so GC can reclaim its state.
            self.hq.on_exit(pid)
        else:
            self.counts["completed"] += 1
            if session.is_attack:
                # An attack session that ran to completion slipped
                # past enforcement — the silent-bypass the fail-closed
                # design forbids.
                self.counts["attacks_escaped"] += 1
        if session.is_attack and outcome == "killed":
            self.counts["attacks_detected"] += 1
        lifetime = session.process.cycles.total(AccountingMode.MODEL)
        self.lifetimes.append(lifetime)
        if self.observer is not None:
            self.observer.session_end(lifetime)
        self.kernel.reap_process(pid)

    # -- event execution -----------------------------------------------------

    def _sample_barrier_lag(self) -> None:
        """Record validation lag as seen entering a syscall barrier.

        This is the latency a session actually pays: the number of
        undispatched messages ahead of its syscall token when the
        kernel starts polling for it.  The per-tick peak doubles as
        the admission controller's pressure signal.
        """
        lag = self.hq.validation_load()
        self.lag_samples.append(lag)
        if lag > self._tick_peak_lag:
            self._tick_peak_lag = lag

    def _step(self, session: _Session) -> None:
        """Execute up to ``events_per_tick`` of one session's script.

        Barrier events (syscall / fork / exit) send their
        synchronization message and *block*: the session stops running
        and waits — across ticks if need be — until the verifier's
        budgeted drain reaches its token (:meth:`_complete_barrier`).
        That wait is where overload becomes visible: the backlog ahead
        of the token is the validation lag the session pays.
        """
        runtime = session.runtime
        try:
            for _ in range(self.config.events_per_tick):
                event = session.script[session.cursor]
                session.cursor += 1
                kind = event[0]
                if kind == "define":
                    runtime.call("hq_pointer_define", [event[1], event[2]])
                elif kind == "check":
                    runtime.call("hq_pointer_check", [event[1], event[2]])
                elif kind == "event":
                    runtime.call("hq_event", [event[1], event[2]])
                else:  # syscall / fork / exit: enter the barrier
                    number = (SYS_FORK if kind == "fork"
                              else SYS_EXIT if kind == "exit" else event[1])
                    runtime.call("hq_syscall", [number])
                    self._sample_barrier_lag()
                    session.barrier = event
                    session.barrier_ticks = 0
                    return
        except ProcessKilledError as error:
            self._finish(session, "killed", error.reason)

    def _complete_barrier(self, session: _Session,
                          last_chance: bool = False) -> None:
        """Run the kernel barrier + system call a session blocked on.

        Called when the session's token is known available (or a
        violation / shard loss / verifier loss awaits it — every
        fail-closed check in ``before_syscall`` still runs).  The
        verifier poll budget is zeroed for the call so completion never
        grants extra validation capacity beyond the per-tick drain;
        ``last_chance`` (timeout or dead verifier) instead lets the
        kernel poll with its full epoch budget before condemning.
        """
        event = session.barrier
        session.barrier = None
        self.wait_samples.append(session.barrier_ticks)
        kind = event[0]
        kernel = self.kernel
        process = session.process
        saved_budget = self.liaison.poll_budget
        if not last_chance:
            self.liaison.poll_budget = 0
        try:
            if kind == "syscall":
                number, arg = event[1], event[2]
                kernel.syscall(process, number,
                               [1, arg, 8] if number != SYS_WIN else [arg])
                if (session.fork_probability
                        and self.rng.random() < session.fork_probability):
                    session.script.insert(session.cursor, ("fork",))
            elif kind == "fork":
                child_pid = kernel.syscall(process, SYS_FORK, [])
                self._spawn_worker(child_pid)
            else:  # exit
                kernel.syscall(process, SYS_EXIT, [event[1]])
                self._finish(session, "completed")
        except ProcessKilledError as error:
            self._finish(session, "killed", error.reason)
        finally:
            self.liaison.poll_budget = saved_budget

    def _spawn_worker(self, child_pid: int) -> None:
        child = self.kernel.processes[child_pid]
        worker = _Session(
            process=child,
            runtime=self._make_runtime(child),
            script=build_worker_script(self.rng, range(TABLE_SLOTS)),
            is_worker=True)
        self.counts["forks"] += 1
        self.active.append(worker)

    # -- fault injection -----------------------------------------------------

    def _inject(self, kind: str) -> None:
        self._faults_fired.append(f"{self.tick}:{kind}")
        if kind == "verifier-crash":
            self._inner.terminate()
        elif kind == "shard-crash":
            crash = getattr(self._inner, "crash_shard", None)
            if crash is not None:
                crash(self.rng.randrange(
                    max(1, len(getattr(self._inner, "shards", [1])))))
        elif kind == "channel-corrupt":
            # An opcode the wire codec does not know: the verifier must
            # treat the stream as corrupt and fail closed on every live
            # pid — never skip it, never crash.
            self.channel.send_raw(self.clock, _CORRUPT_OPCODE, 0, 0, 0)
        else:
            raise ValueError(f"unknown fault kind {kind!r}")

    # -- the main loop -------------------------------------------------------

    def run(self) -> Dict[str, object]:
        try:
            return self._run_loop()
        finally:
            self.close()

    def _run_loop(self) -> Dict[str, object]:
        config = self.config
        phase_schedule: List[Phase] = []
        for phase in self.phases:
            phase_schedule.extend([phase] * phase.ticks)
        duration = config.duration or max(len(phase_schedule) * 4, 400)
        last_arrival_phase = next(
            (p for p in reversed(self.phases) if p.arrivals_per_tick > 0),
            self.phases[-1])

        while self.tick < duration:
            if self.tick < len(phase_schedule):
                phase = phase_schedule[self.tick]
            elif self.offered < config.sessions:
                phase = last_arrival_phase  # keep offering until done
            else:
                phase = self.phases[-1]
            self.tick += 1
            self.clock.cycles.charge_user(ns_to_cycles(TICK_NS),
                                          category="traffic-tick")

            while self._faults and self._faults[0][0] < self.tick:
                self._inject(self._faults.pop(0)[1])

            # Step the runnable population first: barriers record the
            # lag they find on entry, and the tick's peak becomes the
            # pressure admission decisions are made against below.
            self._tick_peak_lag = 0
            for session in list(self.active):
                if session.outcome is None and session.barrier is None:
                    self._step(session)
            self.active = [s for s in self.active if s.outcome is None]

            # Deferred sessions retry before new arrivals (FIFO).
            retries, self.deferred = self.deferred, []
            for session, deferrals in retries:
                self._admit(session, deferrals)
            self._arrival_debt += phase.arrivals_per_tick
            while (self._arrival_debt >= 1.0
                    and self.offered < config.sessions):
                self._arrival_debt -= 1.0
                self._admit(self._new_session(phase), 0)

            # This tick's validation capacity: one budgeted drain.
            self.liaison.poll()

            # Barrier resolution: blocked sessions resume once the
            # drain has reached their token; a pending violation, a
            # dead shard, or a dead verifier also wakes them — the
            # kernel barrier re-runs its fail-closed checks either way.
            verifier_down = bool(self._inner.terminated)
            for session in list(self.active):
                if session.outcome is not None or session.barrier is None:
                    continue
                pid = session.process.pid
                if (verifier_down
                        or self._inner.has_syscall_token(pid)
                        or self._inner.has_violation(pid)
                        or shard_scoped_kill(self._inner, pid)):
                    self._complete_barrier(session,
                                           last_chance=verifier_down)
                else:
                    session.barrier_ticks += 1
                    if session.barrier_ticks > config.barrier_timeout_ticks:
                        # The hardware epoch timer fires: one aggressive
                        # poll burst, then the epoch-timeout kill.
                        self._complete_barrier(session, last_chance=True)
            self.active = [s for s in self.active if s.outcome is None]

            if len(self.active) > self.peak_active:
                self.peak_active = len(self.active)
            table = self._inner.pid_table_size()
            if table > self.peak_pid_table:
                self.peak_pid_table = table
            if self.observer is not None:
                self.observer.pid_table(table)
            if self.tick % config.gc_interval == 0:
                self._inner.advance_epoch()

            if (not self.active and not self.deferred
                    and self.offered >= config.sessions
                    and self.tick >= len(phase_schedule)):
                break

        hit_cap = self.tick >= duration and (self.active or self.deferred)
        # Sessions still queued at the duration cap are shed, not lost.
        for session, _ in self.deferred:
            session.outcome = "shed"
            self.counts["shed"] += 1
        self.deferred = []

        # End of run: unbudgeted drain, then enough GC epochs to
        # reclaim every exited pid's surviving state.
        self.liaison.flush()
        for session in list(self.active):
            if session.outcome is None and session.barrier is not None:
                # The flush surfaced every token: resolve the barrier
                # through the kernel so fail-closed checks still run.
                self._complete_barrier(session, last_chance=True)
        for session in self.active:
            if session.outcome is None:
                # Duration cap with live sessions: account them killed
                # by the harness (outcome recorded, state reclaimed).
                self._finish(session, "killed", "traffic-duration-cap")
        self.active = []
        for _ in range(self.config.gc_epochs + 1):
            self._inner.advance_epoch()
        return self._report(hit_cap)

    # -- reporting -----------------------------------------------------------

    def _report(self, hit_cap: bool) -> Dict[str, object]:
        config = self.config
        sim_seconds = self.tick * TICK_NS * 1e-9
        admission = self.hq.admission
        kills_per_sec = (self.counts["killed"] / sim_seconds
                         if sim_seconds else 0.0)
        shed_per_sec = (self.counts["shed"] / sim_seconds
                        if sim_seconds else 0.0)
        report: Dict[str, object] = {
            "version": REPORT_VERSION,
            "config": {
                "sessions": config.sessions,
                "phases": config.phases,
                "shards": config.shards or 1,
                "seed": config.seed,
                "poll_budget": config.poll_budget,
                "watermarks": [config.defer_watermark,
                               config.shed_watermark],
                "gc": [config.gc_interval, config.gc_epochs],
                "faults": [f"{tick}:{kind}"
                           for tick, kind in sorted(config.faults)],
            },
            "totals": {
                "offered": self.offered,
                "admitted": admission.admitted,
                "deferred": admission.deferred,
                "shed": self.counts["shed"],
                "completed": self.counts["completed"],
                "killed": self.counts["killed"],
                "kill_reasons": dict(sorted(self.kill_reasons.items())),
                "forks": self.counts["forks"],
                "attacks": {
                    "offered": self.counts["attacks_offered"],
                    "detected": self.counts["attacks_detected"],
                    "escaped": self.counts["attacks_escaped"],
                    "wins": len(self.kernel.win_executed),
                },
                "verifier_restarts": self.hq.verifier_restarts,
                "faults_fired": list(self._faults_fired),
                "duration_capped": bool(hit_cap),
            },
            "slo": {
                "ticks": self.tick,
                "sim_seconds": sim_seconds,
                "validation_lag_p50": _percentile(self.lag_samples, 50),
                "validation_lag_p99": _percentile(self.lag_samples, 99),
                "validation_lag_max": max(self.lag_samples, default=0),
                "barrier_wait_ticks_p50": _percentile(self.wait_samples, 50),
                "barrier_wait_ticks_p99": _percentile(self.wait_samples, 99),
                "kills_per_sec": round(kills_per_sec, 3),
                "shed_per_sec": round(shed_per_sec, 3),
                "session_lifetime_p50":
                    _percentile(self.lifetimes, 50),
                "peak_active_sessions": self.peak_active,
            },
            "gc": {
                "reclaimed_pids": self._inner.reclaimed_pids,
                "reclaimed_messages": self._inner.reclaimed_messages,
                "reclaimed_violations": self._inner.reclaimed_violations,
                "peak_pid_table": self.peak_pid_table,
                "final_pid_table": self._inner.pid_table_size(),
            },
            "leaks": {
                "pid_entries": self._inner.pid_table_size(),
                "kernel_processes": len(self.kernel.processes),
            },
        }
        if self.observer is not None:
            # Metrics only: tracer payloads carry raw pids, which vary
            # run to run (pids come from a process-global counter) and
            # would break the report's cross-run determinism.
            report["obs_metrics"] = self.observer.report()["metrics"]
        return report

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.channel.close()
        close = getattr(self._inner, "close", None)
        if close is not None:
            close()


def _percentile(samples: Sequence[float], pct: float) -> float:
    """Exact nearest-rank percentile (deterministic, no interpolation)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      round(pct / 100.0 * (len(ordered) - 1))))
    return float(ordered[int(rank)])


def run_traffic(config: TrafficConfig) -> Dict[str, object]:
    """Build an engine, run it, and return the SLO report."""
    return TrafficEngine(config).run()
