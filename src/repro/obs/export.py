"""Chrome ``trace_event`` exporter.

Converts a :class:`~repro.obs.tracer.Tracer`'s event ring into the
JSON object format consumed by ``chrome://tracing`` and Perfetto:
one process, one thread per layer, microsecond timestamps.

Reference: the Trace Event Format document (the ``traceEvents`` array
with ``ph`` phase letters); only the two phases the tracer records are
emitted — ``"X"`` complete spans and ``"i"`` instant events — plus
``"M"`` metadata records naming each layer's thread.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.tracer import Tracer


def chrome_trace(tracer: Tracer) -> Dict[str, object]:
    """Render the tracer's events as a Chrome trace_event object."""
    layer_tids: Dict[str, int] = {}
    trace_events: List[dict] = []
    for ts_ns, dur_ns, layer, name, kind, args in tracer.events():
        tid = layer_tids.get(layer)
        if tid is None:
            tid = layer_tids[layer] = len(layer_tids) + 1
        event = {
            "name": name,
            "cat": layer,
            "ph": kind,
            "ts": ts_ns / 1000.0,       # trace_event wants microseconds
            "pid": 1,
            "tid": tid,
        }
        if kind == "X":
            event["dur"] = dur_ns / 1000.0
        elif kind == "i":
            event["s"] = "t"            # thread-scoped instant
        if args:
            event["args"] = args
        trace_events.append(event)
    metadata = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "repro-run"}},
    ]
    for layer, tid in sorted(layer_tids.items(), key=lambda kv: kv[1]):
        metadata.append({"name": "thread_name", "ph": "M", "pid": 1,
                         "tid": tid, "args": {"name": layer}})
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"dropped_events": tracer.dropped},
    }
