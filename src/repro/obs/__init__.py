"""Observability layer: structured tracing + per-run metrics.

Public surface:

* :class:`~repro.obs.observer.Observer` — per-run hub handed to
  ``run_program(observe=...)``; owns a ring-buffered
  :class:`~repro.obs.tracer.Tracer` and a
  :class:`~repro.obs.metrics.MetricsRegistry`.
* :func:`~repro.obs.export.chrome_trace` — Chrome ``trace_event``
  rendering of a tracer's events.
* :func:`~repro.obs.diff.diff_reports` — tolerance-aware comparison of
  two metric reports (CI's obs gate).
* ``python -m repro.obs`` — ``summary`` / ``export`` / ``diff`` CLI.

Everything is zero-cost when disabled: instrumented components carry an
``observer`` attribute that defaults to ``None``, and every emit site
is one ``is not None`` predicate.
"""

from repro.obs.diff import diff_reports
from repro.obs.export import chrome_trace
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.observer import Observer
from repro.obs.tracer import Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "Tracer",
    "chrome_trace",
    "diff_reports",
]
