"""Compare two observability metric reports with tolerances.

The comparison contract (used by CI's obs gate against the committed
``BENCH_obs.json`` reference):

* ``meta`` keys present in the reference must match exactly (the
  reference pins design/channel/profile; extras in the new report are
  allowed so the reference doesn't have to anticipate new fields);
* **counters and gauges are exact** — they are pure functions of the
  deterministic simulation, so any drift is a real behaviour change;
* **timing histograms** (names ending in ``_ns``) compare with a
  relative tolerance on ``sum``/``min``/``max`` and allow per-bucket
  drift up to ``ceil(tolerance × count)`` — timing distributions shift
  when constants are retuned without that being a correctness bug;
* all other histograms are exact, field for field.
"""

from __future__ import annotations

import math
from typing import Dict, List

TIMING_SUFFIX = "_ns"


def _close(a: float, b: float, tolerance: float) -> bool:
    if a == b:
        return True
    if a is None or b is None:
        return False
    scale = max(abs(a), abs(b))
    return abs(a - b) <= tolerance * scale


def _diff_scalars(kind: str, ref: Dict[str, object],
                  new: Dict[str, object]) -> List[str]:
    problems = []
    for name in sorted(set(ref) | set(new)):
        if name not in new:
            problems.append(f"{kind} {name}: missing from new report "
                            f"(reference {ref[name]})")
        elif name not in ref:
            problems.append(f"{kind} {name}: not in reference "
                            f"(new {new[name]})")
        elif ref[name] != new[name]:
            problems.append(f"{kind} {name}: {ref[name]} != {new[name]}")
    return problems


def _diff_histogram(name: str, ref: dict, new: dict,
                    tolerance: float) -> List[str]:
    problems = []
    if ref.get("edges") != new.get("edges"):
        return [f"histogram {name}: bucket edges differ "
                f"({ref.get('edges')} vs {new.get('edges')})"]
    timing = name.endswith(TIMING_SUFFIX)
    if ref.get("count") != new.get("count"):
        problems.append(f"histogram {name}: count {ref.get('count')} != "
                        f"{new.get('count')}")
    if timing:
        slack = math.ceil(tolerance * max(ref.get("count", 0), 1))
        for i, (a, b) in enumerate(zip(ref.get("counts", []),
                                       new.get("counts", []))):
            if abs(a - b) > slack:
                problems.append(f"histogram {name}: bucket {i} drifted "
                                f"beyond tolerance ({a} vs {b})")
        for field in ("sum", "min", "max"):
            a, b = ref.get(field), new.get(field)
            if a is None and b is None:
                continue
            if a is None or b is None or not _close(a, b, tolerance):
                problems.append(f"histogram {name}: {field} {a} vs {b} "
                                f"(tolerance {tolerance})")
    else:
        for field in ("counts", "sum", "min", "max"):
            if ref.get(field) != new.get(field):
                problems.append(f"histogram {name}: {field} "
                                f"{ref.get(field)} != {new.get(field)}")
    return problems


def diff_reports(reference: dict, new: dict,
                 tolerance: float = 0.1) -> List[str]:
    """All mismatches between two reports (empty list = compatible)."""
    problems: List[str] = []
    ref_meta = reference.get("meta", {})
    new_meta = new.get("meta", {})
    for key in sorted(ref_meta):
        if new_meta.get(key) != ref_meta[key]:
            problems.append(f"meta {key}: {ref_meta[key]!r} != "
                            f"{new_meta.get(key)!r}")
    ref_metrics = reference.get("metrics", {})
    new_metrics = new.get("metrics", {})
    problems += _diff_scalars("counter", ref_metrics.get("counters", {}),
                              new_metrics.get("counters", {}))
    problems += _diff_scalars("gauge", ref_metrics.get("gauges", {}),
                              new_metrics.get("gauges", {}))
    ref_hists = ref_metrics.get("histograms", {})
    new_hists = new_metrics.get("histograms", {})
    for name in sorted(set(ref_hists) | set(new_hists)):
        if name not in new_hists:
            problems.append(f"histogram {name}: missing from new report")
        elif name not in ref_hists:
            problems.append(f"histogram {name}: not in reference")
        else:
            problems += _diff_histogram(name, ref_hists[name],
                                        new_hists[name], tolerance)
    return problems
