"""Command-line entry point: ``python -m repro.obs <subcommand>``.

Subcommands:

* ``summary`` — run one observed benchmark and print a per-layer
  metrics breakdown (counters, gauges, histograms).
* ``export`` — run one observed benchmark and write its metrics report
  (and optionally the Chrome trace) as JSON; the committed
  ``BENCH_obs.json`` reference is produced by ``export`` with default
  arguments.
* ``diff`` — compare two metric reports with tolerances (counters and
  gauges exact, timing histograms within ``--tolerance``); exits
  non-zero on mismatch, which is CI's obs gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

#: Defaults chosen to be fast (train dataset) and to exercise every
#: layer: an indirect-call-heavy workload under a monitored hq design
#: over the software-model channel.
DEFAULT_PROFILE = "403.gcc"
DEFAULT_DATASET = "train"
DEFAULT_DESIGN = "hq-sfestk"
DEFAULT_CHANNEL = "model"


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile", default=DEFAULT_PROFILE,
                        help="workload profile (default: %(default)s)")
    parser.add_argument("--dataset", default=DEFAULT_DATASET,
                        choices=("train", "ref"),
                        help="input dataset (default: %(default)s)")
    parser.add_argument("--design", default=DEFAULT_DESIGN,
                        help="CFI design (default: %(default)s)")
    parser.add_argument("--channel", default=DEFAULT_CHANNEL,
                        help="IPC primitive (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=1,
                        help="ASLR seed (default: %(default)s)")
    parser.add_argument("--shards", type=int, default=None,
                        help="run under the sharded verifier runtime "
                             "with this many shards; the summary then "
                             "includes per-shard [shard] rows "
                             "(default: unsharded)")


def _observed_run(args: argparse.Namespace):
    """Execute the requested benchmark under observation."""
    from repro.core.framework import run_program
    from repro.obs.observer import Observer
    from repro.workloads.generator import build_module
    from repro.workloads.profiles import get_profile

    observer = Observer()
    observer.meta["profile"] = args.profile
    observer.meta["dataset"] = args.dataset
    shards = getattr(args, "shards", None)
    if shards:
        observer.meta["shards"] = shards
    module = build_module(get_profile(args.profile), dataset=args.dataset)
    result = run_program(module, design=args.design, channel=args.channel,
                         kill_on_violation=False, seed=args.seed,
                         max_steps=10_000_000, observe=observer,
                         shards=shards)
    return observer, result


def _render_histogram(name: str, data: dict) -> List[str]:
    buckets = []
    edges = data["edges"]
    for i, count in enumerate(data["counts"]):
        if not count:
            continue
        label = f"<={edges[i]:g}" if i < len(edges) else f">{edges[-1]:g}"
        buckets.append(f"{label}:{count}")
    lines = [f"    {name}  count={data['count']} sum={data['sum']:g}"
             + (f" min={data['min']:g} max={data['max']:g}"
                if data["min"] is not None else "")]
    if buckets:
        lines.append("      buckets  " + "  ".join(buckets))
    return lines


def render_summary(report: dict) -> str:
    """Per-layer breakdown of one metrics report."""
    metrics = report["metrics"]
    names = (list(metrics["counters"]) + list(metrics["gauges"])
             + list(metrics["histograms"]))
    layers = sorted({name.split(".", 1)[0] for name in names})
    meta = report.get("meta", {})
    lines = ["observability summary (" + ", ".join(
        f"{k}={v}" for k, v in sorted(meta.items())) + ")",
        f"layers: {len(layers)} ({', '.join(layers)})"]
    for layer in layers:
        lines.append(f"  [{layer}]")
        for name, value in metrics["counters"].items():
            if name.startswith(layer + "."):
                lines.append(f"    {name}  {value}")
        for name, value in metrics["gauges"].items():
            if name.startswith(layer + "."):
                lines.append(f"    {name}  {value:g}")
        for name, data in metrics["histograms"].items():
            if name.startswith(layer + "."):
                lines.extend(_render_histogram(name, data))
    trace = report.get("trace", {})
    lines.append(f"trace: {trace.get('events', 0)} events "
                 f"({trace.get('dropped', 0)} dropped, "
                 f"capacity {trace.get('capacity', 0)})")
    return "\n".join(lines)


def cmd_summary(args: argparse.Namespace) -> int:
    observer, result = _observed_run(args)
    report = observer.report()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_summary(report))
        print(f"run: outcome={result.outcome} steps={result.steps} "
              f"messages={result.messages_sent}")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.obs.export import chrome_trace

    observer, _result = _observed_run(args)
    report = observer.report()
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.out == "-":
        sys.stdout.write(payload)
    else:
        with open(args.out, "w") as handle:
            handle.write(payload)
        print(f"metrics report: {args.out}")
    if args.perf_profile:
        from repro.bench.timing import emit_perf_profile
        emit_perf_profile(args.perf_profile, "obs", report,
                          meta={"profile": args.profile,
                                "design": args.design})
        print(f"perf profile: {args.perf_profile}")
    if args.trace:
        with open(args.trace, "w") as handle:
            json.dump(chrome_trace(observer.tracer), handle, indent=1)
            handle.write("\n")
        print(f"chrome trace: {args.trace} "
              f"(open in chrome://tracing or Perfetto)")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.obs.diff import diff_reports

    with open(args.reference) as handle:
        reference = json.load(handle)
    with open(args.new) as handle:
        new = json.load(handle)
    problems = diff_reports(reference, new, tolerance=args.tolerance)
    if problems:
        print(f"obs diff: {len(problems)} mismatch(es) "
              f"({args.reference} vs {args.new}):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"obs diff: reports match ({args.reference} vs {args.new}, "
          f"tolerance {args.tolerance})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability CLI: summarize, export, and diff "
                    "per-run metric reports.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary",
                               help="run one benchmark and print "
                                    "per-layer metrics")
    _add_run_args(p_summary)
    p_summary.add_argument("--json", action="store_true",
                           help="print the raw report as JSON")
    p_summary.set_defaults(func=cmd_summary)

    p_export = sub.add_parser("export",
                              help="run one benchmark and write its "
                                   "metrics report (and Chrome trace)")
    _add_run_args(p_export)
    p_export.add_argument("--out", default="obs_report.json",
                          help="metrics report path ('-' for stdout; "
                               "default: %(default)s)")
    p_export.add_argument("--trace", default=None, metavar="PATH",
                          help="also write a Chrome trace_event JSON")
    p_export.add_argument("--perf-profile", default=None, metavar="PATH",
                          help="also fold the timing-histogram sums "
                               "into the unified perf profile at PATH "
                               "(repro.perf.profile.write)")
    p_export.set_defaults(func=cmd_export)

    p_diff = sub.add_parser("diff",
                            help="compare two metric reports "
                                 "(non-zero exit on mismatch)")
    p_diff.add_argument("reference", help="reference report JSON")
    p_diff.add_argument("new", help="new report JSON")
    p_diff.add_argument("--tolerance", type=float, default=0.1,
                        help="relative tolerance for timing histograms "
                             "(default: %(default)s)")
    p_diff.set_defaults(func=cmd_diff)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
