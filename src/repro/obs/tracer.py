"""Ring-buffered structured event tracer.

Records *instant events* and *spans* with monotonic sim-time timestamps
(nanoseconds derived from the monitored process's cycle totals — never
wall clock, so traces are deterministic and diffable across runs).

The buffer is a fixed-capacity ring: when full, the oldest events are
overwritten and ``dropped`` counts how many were lost.  Keeping the
*last* N events is the right policy for a post-mortem trace — the
interesting part of a run (the violation, the kill, the final drain) is
at the end.

Events are plain tuples ``(ts_ns, dur_ns, layer, name, kind, args)``
with ``kind`` following the Chrome ``trace_event`` phase letters that
:mod:`repro.obs.export` emits: ``"i"`` (instant) and ``"X"``
(complete span, duration attached).  ``args`` is a small dict or None.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

#: (ts_ns, dur_ns, layer, name, kind, args)
Event = Tuple[float, float, str, str, str, Optional[dict]]

DEFAULT_CAPACITY = 4096


class Tracer:
    """Fixed-capacity ring buffer of trace events.

    ``clock`` returns the current sim time in nanoseconds; when absent
    a per-tracer sequence number is used, which preserves ordering (for
    unit tests that exercise the ring without a simulation attached).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self.clock = clock if clock is not None else self._seq_clock
        self._events: List[Event] = []
        self._head = 0          # next overwrite slot once the ring is full
        self.dropped = 0
        self._seq = 0.0

    def _seq_clock(self) -> float:
        self._seq += 1.0
        return self._seq

    # -- recording -----------------------------------------------------------

    def _record(self, event: Event) -> None:
        if len(self._events) < self.capacity:
            self._events.append(event)
            return
        self._events[self._head] = event
        self._head = (self._head + 1) % self.capacity
        self.dropped += 1

    def instant(self, layer: str, name: str,
                args: Optional[dict] = None) -> None:
        self._record((self.clock(), 0.0, layer, name, "i", args))

    def complete(self, layer: str, name: str, ts_ns: float, dur_ns: float,
                 args: Optional[dict] = None) -> None:
        """Record a finished span: start timestamp plus duration."""
        self._record((ts_ns, dur_ns, layer, name, "X", args))

    # -- reading -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[Event]:
        """Events in chronological (recording) order."""
        if len(self._events) < self.capacity:
            return list(self._events)
        return self._events[self._head:] + self._events[:self._head]

    def summary(self) -> Dict[str, int]:
        return {"events": len(self._events), "dropped": self.dropped,
                "capacity": self.capacity}
