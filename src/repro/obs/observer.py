"""The per-run observability hub: one tracer + one metrics registry.

An :class:`Observer` is created by ``run_program(observe=...)`` and
threaded to every instrumented layer (interpreter, kernel module, IPC
channel, verifier).  Each layer holds the observer in an ``observer``
attribute that defaults to ``None`` at class level; every emit site is
guarded by a single ``if observer is not None`` predicate, which is the
entire disabled-path cost — the contract `python -m repro.bench`
byte-identity rests on.

Timestamps come from the monitored process's cycle accounting (MODEL
total, converted to nanoseconds at the simulated clock), so they are
monotonic within a run and fully deterministic: two same-seed runs
yield identical traces and metric reports.

The emit helpers below are the event taxonomy; see DESIGN.md
("Observability") for the layer-by-layer description.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import DEFAULT_CAPACITY, Tracer
from repro.sim.cycles import CLOCK_GHZ, AccountingMode

REPORT_VERSION = 1

#: Fixed histogram bucket edges (inclusive upper bounds).  Fixed at
#: module level so every run buckets identically — cross-run diffs
#: compare bucket-for-bucket.
BLOCK_SIZE_EDGES = (1, 2, 4, 8, 16, 32, 64)
BARRIER_WAIT_NS_EDGES = (0.0, 400.0, 800.0, 1600.0, 3200.0)
BATCH_SIZE_EDGES = (1, 8, 64, 256, 1024, 4096)
VALIDATION_LAG_EDGES = (0, 1, 8, 64, 256, 1024)
SESSION_LIFETIME_EDGES = (1_000, 10_000, 100_000, 1_000_000, 10_000_000)


class Observer:
    """Bundles the tracer and the metrics registry for one run.

    Hot emit sites bump pre-bound :class:`~repro.obs.metrics.Counter`
    references (``observer.cpu_blocks.value += 1``); colder sites call
    the helper methods, which also record trace events.
    """

    def __init__(self, trace_capacity: int = DEFAULT_CAPACITY) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(capacity=trace_capacity, clock=self.now)
        self.meta: Dict[str, object] = {}
        self._clock_cycles = None   # CycleAccount of the observed process
        self._backlog_peak = 0
        #: Lazily-created per-shard metric bundles (sharded runs only;
        #: unsharded runs never touch this, keeping their reports — and
        #: the bench byte-identity gate — unchanged).
        self._shard_metrics: Dict[int, tuple] = {}
        #: Lazily-created per-shard idle-poll counters (worker-process
        #: runs only); separate from ``_shard_metrics`` so inline
        #: sharded reports keep their existing shape.
        self._shard_idle: Dict[int, object] = {}
        #: Lazily-created traffic-tier metrics (GC reclaim, session
        #: lifetimes, shed sessions).  Runs that never churn sessions
        #: never create them, keeping existing reports byte-identical.
        self._gc_reclaimed = None
        self._pid_table_size = None
        self._session_lifetime = None
        self._shed_sessions = None
        #: Lazily-created compile-tier metrics (``interp.*``): only runs
        #: that actually lower a function create them, so closure-tier
        #: and pre-VM reports keep their exact shape.
        self._vm_compiled_blocks = None
        self._vm_deopts = None

        registry = self.registry
        # cpu layer (sim/cpu.py)
        self.cpu_blocks = registry.counter("cpu.blocks_executed")
        self.cpu_decode_hits = registry.counter("cpu.decode_hits")
        self.cpu_decode_misses = registry.counter("cpu.decode_misses")
        self.cpu_block_size = registry.histogram("cpu.block_size",
                                                 BLOCK_SIZE_EDGES)
        # kernel layer (sim/kernel.py)
        self.kernel_syscalls = registry.counter(
            "kernel.syscalls_intercepted")
        self.kernel_barrier_waits = registry.counter("kernel.barrier_waits")
        self.kernel_kills = registry.counter("kernel.kills")
        self.kernel_epoch_timeouts = registry.counter(
            "kernel.epoch_timeouts")
        self.kernel_fail_closed = registry.counter("kernel.fail_closed")
        self.kernel_restarts = registry.counter("kernel.verifier_restarts")
        self.kernel_barrier_wait_ns = registry.histogram(
            "kernel.barrier_wait_ns", BARRIER_WAIT_NS_EDGES)
        # ipc layer (ipc/base.py, ipc/appendwrite.py; batch counters are
        # emitted at the verifier's receive boundary, which sees every
        # transport — wrapped or not — uniformly)
        self.ipc_batches = registry.counter("ipc.batches")
        self.ipc_messages = registry.counter("ipc.messages_received")
        self.ipc_full_events = registry.counter("ipc.full_events")
        self.ipc_drops = registry.counter("ipc.messages_dropped")
        self.ipc_counter_fallbacks = registry.counter(
            "ipc.counter_fallbacks")
        self.ipc_amr_faults = registry.counter("ipc.amr_faults")
        self.ipc_amr_revalidations = registry.counter(
            "ipc.amr_revalidations")
        self.ipc_batch_size = registry.histogram("ipc.batch_size",
                                                 BATCH_SIZE_EDGES)
        # verifier layer (core/verifier.py)
        self.verifier_polls = registry.counter("verifier.polls")
        self.verifier_dispatch_runs = registry.counter(
            "verifier.dispatch_runs")
        self.verifier_violations = registry.counter("verifier.violations")
        self.verifier_integrity = registry.counter(
            "verifier.integrity_failures")
        self.verifier_validation_lag = registry.histogram(
            "verifier.validation_lag", VALIDATION_LAG_EDGES)

    # -- clock ---------------------------------------------------------------

    def bind_clock(self, process) -> None:
        """Derive timestamps from ``process``'s cycle totals."""
        self._clock_cycles = process.cycles

    def now(self) -> float:
        """Current sim time in nanoseconds (0.0 before a clock binds)."""
        cycles = self._clock_cycles
        if cycles is None:
            return 0.0
        return cycles.total(AccountingMode.MODEL) / CLOCK_GHZ

    # -- cpu emits -----------------------------------------------------------

    def cpu_decode_miss(self, function: str, block: str) -> None:
        self.cpu_decode_misses.value += 1
        self.tracer.instant("cpu", "decode-miss",
                            {"function": function, "block": block})

    def vm_compile(self, function: str, blocks: int) -> None:
        """The compile tier lowered ``function`` into ``blocks`` flat
        block bodies (lazy; once per function per interpreter)."""
        if self._vm_compiled_blocks is None:
            self._vm_compiled_blocks = self.registry.counter(
                "interp.compiled_blocks")
            self._vm_deopts = self.registry.counter("interp.deopt_count")
        self._vm_compiled_blocks.value += blocks
        self.tracer.instant("cpu", "vm-compile",
                            {"function": function, "blocks": blocks})

    def vm_deopt(self) -> None:
        """A compiled frame bridged one instruction through the closure
        tier (call/syscall/runtime callout escape)."""
        if self._vm_deopts is None:
            self._vm_deopts = self.registry.counter("interp.deopt_count")
        self._vm_deopts.value += 1

    # -- kernel emits --------------------------------------------------------

    def kernel_barrier(self, syscall: int, waits: int,
                       waited_ns: float) -> None:
        """A syscall barrier resumed after ``waits`` verifier round trips."""
        self.kernel_barrier_wait_ns.observe(waited_ns)
        if waits:
            self.kernel_barrier_waits.value += 1
            self.tracer.complete("kernel", "barrier-wait",
                                 self.now() - waited_ns, waited_ns,
                                 {"syscall": syscall, "round_trips": waits})

    def kernel_kill(self, pid: int, reason: str) -> None:
        self.kernel_kills.value += 1
        if reason == "synchronization epoch timeout":
            self.kernel_epoch_timeouts.value += 1
        self.tracer.instant("kernel", "kill",
                            {"pid": pid, "reason": reason})

    def kernel_fail_closed_event(self, pid: int, reason: str) -> None:
        self.kernel_fail_closed.value += 1
        self.tracer.instant("kernel", "fail-closed",
                            {"pid": pid, "reason": reason})

    def kernel_verifier_restart(self) -> None:
        self.kernel_restarts.value += 1
        self.tracer.instant("kernel", "verifier-restart", None)

    # -- ipc emits -----------------------------------------------------------

    def ipc_batch(self, messages: int) -> None:
        self.ipc_batches.value += 1
        self.ipc_messages.value += messages
        self.ipc_batch_size.observe(messages)

    def ipc_full(self) -> None:
        self.ipc_full_events.value += 1
        self.tracer.instant("ipc", "channel-full", None)

    def ipc_drop(self) -> None:
        self.ipc_drops.value += 1
        self.tracer.instant("ipc", "message-dropped", None)

    def ipc_counter_fallback(self) -> None:
        self.ipc_counter_fallbacks.value += 1
        self.tracer.instant("ipc", "counter-fallback", None)

    def ipc_amr_fault(self) -> None:
        self.ipc_amr_faults.value += 1
        self.tracer.instant("ipc", "amr-fault", None)

    # -- verifier emits ------------------------------------------------------

    def verifier_poll_event(self, processed: int, start_ns: float) -> None:
        self.verifier_polls.value += 1
        self.verifier_validation_lag.observe(processed)
        if processed:
            now = self.now()
            self.tracer.complete("verifier", "poll", start_ns,
                                 now - start_ns, {"messages": processed})

    def note_backlog(self, size: int) -> None:
        if size > self._backlog_peak:
            self._backlog_peak = size

    def violation(self, pid: int, kind: str) -> None:
        self.verifier_violations.value += 1
        self.tracer.instant("verifier", "violation",
                            {"pid": pid, "kind": kind})

    def integrity_failure(self, detail: str) -> None:
        self.verifier_integrity.value += 1
        self.tracer.instant("verifier", "integrity-failure",
                            {"detail": detail[:120]})

    # -- traffic-tier emits (lazy; only session-churning runs create) --------

    def gc_reclaim(self, pids: int, table_size: int) -> None:
        """Epoch GC reclaimed ``pids`` sessions' verifier state; the
        pid table now holds ``table_size`` entries."""
        if self._gc_reclaimed is None:
            self._gc_reclaimed = self.registry.counter(
                "verifier.gc_reclaimed")
            self._pid_table_size = self.registry.gauge(
                "verifier.pid_table_size")
        self._gc_reclaimed.value += pids
        self._pid_table_size.set(table_size)
        self.tracer.instant("verifier", "gc-reclaim",
                            {"pids": pids, "table_size": table_size})

    def pid_table(self, table_size: int) -> None:
        """Point-in-time pid-table reading (peak tracked by caller)."""
        if self._pid_table_size is None:
            self._pid_table_size = self.registry.gauge(
                "verifier.pid_table_size")
        self._pid_table_size.set(table_size)

    def session_end(self, lifetime_cycles: float) -> None:
        """A session completed after ``lifetime_cycles`` of sim work."""
        if self._session_lifetime is None:
            self._session_lifetime = self.registry.histogram(
                "session.lifetime_cycles", SESSION_LIFETIME_EDGES)
        self._session_lifetime.observe(lifetime_cycles)

    def session_shed(self) -> None:
        """Admission control shed a session at the shed watermark."""
        if self._shed_sessions is None:
            self._shed_sessions = self.registry.counter(
                "kernel.shed_sessions")
        self._shed_sessions.value += 1
        self.tracer.instant("kernel", "session-shed", None)

    # -- shard emits (sharded verifier runtime only) -------------------------

    def _shard_bundle(self, shard_id: int) -> tuple:
        bundle = self._shard_metrics.get(shard_id)
        if bundle is None:
            prefix = f"shard.{shard_id}"
            bundle = (
                self.registry.counter(f"{prefix}.messages_drained"),
                self.registry.histogram(f"{prefix}.ring_occupancy",
                                        BATCH_SIZE_EDGES),
                self.registry.histogram(f"{prefix}.validation_lag",
                                        VALIDATION_LAG_EDGES),
                self.registry.counter(f"{prefix}.kills"),
            )
            self._shard_metrics[shard_id] = bundle
        return bundle

    def shard_drain(self, shard_id: int, drained: int,
                    occupancy: int) -> None:
        """One shard's drain slice: ``occupancy`` messages were waiting
        in its ring, ``drained`` got dispatched this poll (the
        difference, when positive, is that shard's validation lag)."""
        drained_counter, ring_occupancy, validation_lag, _ = \
            self._shard_bundle(shard_id)
        drained_counter.value += drained
        ring_occupancy.observe(occupancy)
        validation_lag.observe(max(0, occupancy - drained))

    def shard_down(self, shard_id: int, pids_condemned: int) -> None:
        """A verifier shard died; its pids are condemned (scoped)."""
        self._shard_bundle(shard_id)[3].value += pids_condemned
        self.tracer.instant("verifier", "shard-down",
                            {"shard": shard_id,
                             "pids_condemned": pids_condemned})

    def shard_idle_polls(self, shard_id: int, polls: int) -> None:
        """Empty consume polls a shard worker performed (reported once
        at worker shutdown) — the adaptive-backoff efficiency signal:
        high counts mean the worker outpaces its producer."""
        counter = self._shard_idle.get(shard_id)
        if counter is None:
            counter = self._shard_idle[shard_id] = \
                self.registry.counter(f"shard.{shard_id}.idle_polls")
        counter.value += polls

    # -- run lifecycle -------------------------------------------------------

    def run_start(self, design: str, channel: Optional[str]) -> None:
        self.tracer.instant("run", "start",
                            {"design": design, "channel": channel})

    def finalize_run(self, *, steps: Optional[int] = None,
                     runtime=None, channel=None, verifier=None,
                     outcome: Optional[str] = None) -> None:
        """Capture end-of-run gauges from the wired components."""
        gauge = self.registry.gauge
        if steps is not None:
            gauge("cpu.steps", steps)
        if runtime is not None:
            gauge("runtime.messages_sent", runtime.messages_sent)
            gauge("runtime.full_retries", runtime.full_retries)
        if channel is not None:
            gauge("ipc.sent_total", channel.sent_total)
            gauge("ipc.dropped_total", channel.dropped_total)
        if verifier is not None:
            gauge("verifier.backlog", verifier.backlog_size())
            gauge("verifier.backlog_peak", self._backlog_peak)
            gauge("verifier.messages_processed",
                  verifier.total_messages())
        if outcome is not None:
            self.meta["outcome"] = outcome
            self.tracer.instant("run", "end", {"outcome": outcome})

    # -- export --------------------------------------------------------------

    def report(self) -> Dict[str, object]:
        """The per-run metrics report (JSON-serializable, deterministic)."""
        return {
            "version": REPORT_VERSION,
            "meta": dict(sorted(self.meta.items())),
            "metrics": self.registry.as_dict(),
            "trace": self.tracer.summary(),
        }
