"""Per-run metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the aggregation side of the observability layer
(:mod:`repro.obs`): every instrumented component increments counters or
observes histogram samples while a run executes, and the whole registry
exports as one JSON-serializable dict at the end of the run.

Design constraints, in order of importance:

1. **Determinism** — every metric must be a pure function of the
   simulation state, never of wall-clock time or memory layout, so two
   same-seed runs produce byte-identical reports (this is tested and is
   what makes CI's ``python -m repro.obs diff`` gate meaningful).
2. **Cheap when enabled** — hot emit sites hold direct references to
   :class:`Counter` objects and bump ``.value`` inline; histogram
   observation is a linear scan over a handful of edges.
3. **Nonexistent when disabled** — nothing in this module is imported
   or instantiated unless a run passes ``observe=``; disabled emit
   sites are a single ``is not None`` predicate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time reading (set, not accumulated)."""

    __slots__ = ("value",)

    def __init__(self, value: Number = 0) -> None:
        self.value = value

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max summary stats.

    ``edges`` are inclusive upper bounds: a sample lands in the first
    bucket whose edge is >= the value, or in the overflow bucket past
    the last edge — ``counts`` therefore has ``len(edges) + 1`` slots.
    Edges are fixed at construction so two runs of the same code always
    bucket identically (a prerequisite for exact cross-run diffs).
    """

    __slots__ = ("edges", "counts", "count", "sum", "min", "max")

    def __init__(self, edges: Sequence[Number]) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError("histogram edges must be non-empty and sorted")
        self.edges = tuple(edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        index = 0
        for edge in self.edges:
            if value <= edge:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def as_dict(self) -> Dict[str, object]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Name-addressed store of all metrics for one run.

    Names are dot-separated with the owning layer as the first segment
    (``cpu.``, ``kernel.``, ``ipc.``, ``verifier.``, ``runtime.``);
    :meth:`layers` groups on that prefix, which is how the summary CLI
    renders a per-layer breakdown.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- get-or-create accessors -------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        return counter

    def gauge(self, name: str, value: Optional[Number] = None) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        if value is not None:
            gauge.value = value
        return gauge

    def histogram(self, name: str, edges: Sequence[Number]) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(edges)
        return histogram

    # -- export -------------------------------------------------------------

    def layers(self) -> List[str]:
        """Distinct layer prefixes with at least one metric, sorted."""
        names = (list(self.counters) + list(self.gauges)
                 + list(self.histograms))
        return sorted({name.split(".", 1)[0] for name in names})

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self.gauges.items())},
            "histograms": {name: h.as_dict()
                           for name, h in sorted(self.histograms.items())},
        }
