"""RIPE64-style runtime intrusion prevention evaluator (section 5.2).

RIPE [110] (and its 64-bit port RIPE64 [90]) is a *self-attacking*
program: each testcase performs a buffer overflow against itself from a
chosen overflow **origin** (stack / heap / bss / data), corrupts a
chosen **target** code pointer with a chosen **technique**, and then
triggers the hijacked control transfer; the exploit "succeeds" when its
shellcode achieves an externally visible effect (a system call).  RIPE
emulates *disclosure attacks* against hidden safe stacks by retrieving
return-pointer addresses through a compiler builtin.

This module reconstructs that matrix on the simulated machine.  Every
attack is genuinely executed: the victim IR program copies attacker
input (planted into simulated memory at load time — data the compiler
cannot see) over its own memory, and success is judged solely by
whether the attack-marker system call (``SYS_WIN``) executed before any
defense stopped the program.  The per-family multiplicities reproduce
RIPE64's combination counts, whose per-origin totals under the
uninstrumented baseline are Table 5's first row (954 = 214 BSS + 234
data + 234 heap + 272 stack).

Families:

========================  ====================================================
family                    attack shape
========================  ====================================================
``fp-direct``             linear overflow onto an adjacent function pointer
``fp-indirect``           overflow corrupts a data pointer + value; the
                          program's own write-through becomes an arbitrary
                          write onto a function pointer elsewhere
``ret-direct``            linear stack overflow onto the return address
``disclosure-linear``     linear overwrite that walks from the unsafe stack
                          into an *adjacent* safe stack (defeats CPI's
                          layout; stopped by guard pages)
``disclosure-arb``        ``__builtin_return_address``-style disclosure of
                          the return slot plus an arbitrary write to it
========================  ====================================================

Function-pointer payloads come in two flavours: ``sameclass`` redirects
to an address-taken function of the *same static type* (a
return-into-libc-style target that type-based CFI must allow) and
``noclass`` to a function outside every type class (shellcode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.compiler import ir
from repro.compiler.builder import IRBuilder
from repro.compiler.types import ArrayType, I64, func, ptr
from repro.core.framework import RunResult, run_program
from repro.sim.cpu import SYS_EXECVE, SYS_WIN
from repro.sim.loader import Image
from repro.sim.memory import WORD_SIZE
from repro.sim.process import HEAP_BASE, STACK_TOP

ORIGINS = ("bss", "data", "heap", "stack")

#: (family, payload) -> {origin: combination count}.  Totals per origin
#: match RIPE64's successful-under-baseline counts (Table 5, row 1).
FAMILY_COUNTS: Dict[Tuple[str, str], Dict[str, int]] = {
    ("fp-direct", "sameclass"): {"stack": 10, "heap": 10, "data": 10, "bss": 10},
    ("fp-indirect", "sameclass"): {"stack": 0, "heap": 40, "data": 40, "bss": 40},
    ("fp-direct", "noclass"): {"stack": 100, "heap": 114, "data": 114, "bss": 94},
    ("fp-indirect", "noclass"): {"stack": 20, "heap": 60, "data": 60, "bss": 60},
    ("ret-direct", "-"): {"stack": 132, "heap": 0, "data": 0, "bss": 0},
    ("disclosure-linear", "-"): {"stack": 10, "heap": 0, "data": 0, "bss": 0},
    ("disclosure-arb", "-"): {"stack": 0, "heap": 10, "data": 10, "bss": 10},
}


@dataclass(frozen=True)
class Attack:
    """One RIPE testcase."""

    family: str
    payload: str
    origin: str
    variant: int = 0

    @property
    def buf_words(self) -> int:
        """Victim buffer size varies across variants, as in RIPE."""
        return 2 + self.variant % 3


def attack_matrix(dedup: bool = False) -> List[Attack]:
    """Enumerate the full matrix (or one representative per family)."""
    attacks: List[Attack] = []
    for (family, payload), counts in FAMILY_COUNTS.items():
        for origin, count in counts.items():
            if count == 0:
                continue
            n = 1 if dedup else count
            attacks.extend(Attack(family, payload, origin, variant)
                           for variant in range(n))
    return attacks


def family_count(attack: Attack) -> int:
    """Combination count of the attack's family at its origin."""
    return FAMILY_COUNTS[(attack.family, attack.payload)][attack.origin]


# ---------------------------------------------------------------------------
# Victim construction
# ---------------------------------------------------------------------------

PreRun = Callable[[Image, object], None]


def _payload_functions(module: ir.Module, sig) -> Tuple[ir.Function, ir.Function, ir.Function]:
    """legit target + the two payload targets (sameclass / noclass)."""
    legit = module.add_function("legit", sig)
    b = IRBuilder(legit.add_block("entry"))
    b.ret(b.mul(legit.params[0], b.const(2)))

    # Return-into-libc-style target: address-taken, same static type as
    # the legitimate callee, so type-class CFI must allow it.
    libc_system = module.add_function("libc_system", sig)
    libc_system.address_taken = True
    b = IRBuilder(libc_system.add_block("entry"))
    b.syscall(SYS_WIN, [])
    b.ret(b.const(0))

    # Shellcode-style target: different type, not address-taken.
    shellcode = module.add_function("shellcode", func(I64, [I64, I64, I64]))
    b = IRBuilder(shellcode.add_block("entry"))
    b.syscall(SYS_WIN, [])
    b.ret(b.const(0))
    return legit, libc_system, shellcode


def _payload_name(attack: Attack) -> str:
    return "libc_system" if attack.payload == "sameclass" else "shellcode"


def build_victim(attack: Attack) -> Tuple[ir.Module, PreRun]:
    """Build the victim module and the attacker-input planting hook."""
    builders = {
        "fp-direct": _build_fp_direct,
        "fp-indirect": _build_fp_indirect,
        "ret-direct": _build_ret_direct,
        "disclosure-linear": _build_disclosure_linear,
        "disclosure-arb": _build_disclosure_arb,
    }
    return builders[attack.family](attack)


def _input_global(module: ir.Module, words: int = 16) -> ir.GlobalVariable:
    """The attacker-controlled input buffer (stands in for stdin/recv)."""
    return module.add_global("attacker_input", ArrayType(I64, words),
                             initializer=[ir.Constant(0)] * words)


def _plant(image: Image, words: List[int]) -> None:
    base = image.global_address["attacker_input"]
    for i, word in enumerate(words):
        image.process.memory.store_physical(base + i * WORD_SIZE, word)


def _region_slots(attack: Attack, module: ir.Module, b: IRBuilder,
                  n_slots: int) -> Tuple[List[ir.Value], Callable[[Image], int]]:
    """Allocate ``n_slots`` adjacent word slots in the origin region.

    Returns (slot pointer values, base-address resolver).  Slot ``i``
    lives at ``base + i * 8``; a linear overflow starting at slot 0
    reaches all of them.
    """
    if attack.origin == "stack":
        allocas = [b.alloca(I64, f"slot{i}") for i in range(n_slots)]
        # Stack layout is deterministic: resolved at plant time via the
        # knowledge that these are main's first allocas.
        return allocas, lambda image: -1  # resolver unused for stack
    if attack.origin == "heap":
        pointers = []
        for i in range(n_slots):
            pointers.append(b.malloc(b.const(WORD_SIZE), f"h{i}"))
        return pointers, lambda image: HEAP_BASE
    # bss / data: one global array, slots are its elements.
    initializer = [ir.Constant(0)] * n_slots if attack.origin == "data" else None
    region = module.add_global("victim_region", ArrayType(I64, n_slots),
                               initializer=initializer)
    slots = [b.gep_index(region, b.const(i), f"g{i}") for i in range(n_slots)]
    return slots, lambda image: image.global_address["victim_region"]


def _overflow_copy(b: IRBuilder, inp: ir.GlobalVariable,
                   dst: ir.Value, max_words: int) -> None:
    """The vulnerability: copy ``input[0]`` words from ``input[1:]`` to
    ``dst`` with no bounds check (the attacker controls the length)."""
    length = b.load(b.gep_index(inp, b.const(0)), "n")
    src = b.gep_index(inp, b.const(1), "src")
    b.memcpy(dst, src, b.mul(length, b.const(WORD_SIZE)))


def _build_fp_direct(attack: Attack) -> Tuple[ir.Module, PreRun]:
    """Linear overflow onto an adjacent function pointer."""
    module = ir.Module(f"ripe-{attack.family}-{attack.origin}-{attack.payload}")
    sig = func(I64, [I64])
    legit, _, _ = _payload_functions(module, sig)
    inp = _input_global(module)
    n = attack.buf_words

    mainf = module.add_function("main", func(I64, []))
    b = IRBuilder(mainf.add_block("entry"))
    slots, resolve_base = _region_slots(attack, module, b, n + 1)
    fp_slot = b.cast(slots[n], ptr(ptr(sig)), "fp_slot")
    b.store(ir.FunctionRef(legit), fp_slot)
    _overflow_copy(b, inp, slots[0], n + 1)
    fpv = b.load(fp_slot, "fpv")
    result = b.icall(fpv, [b.const(7)], sig, "res")
    b.syscall(1, [b.const(1), result, b.const(8)])
    b.ret(result)

    def pre_run(image: Image, interp) -> None:
        target = image.function_address[_payload_name(attack)]
        payload = [n + 1] + [0x41] * n + [target]
        _plant(image, payload)

    return module, pre_run


def _build_fp_indirect(attack: Attack) -> Tuple[ir.Module, PreRun]:
    """Overflow corrupts (pointer, value); the program's own write
    through the pointer becomes an arbitrary write onto a function
    pointer stored elsewhere (here: a data-segment global)."""
    module = ir.Module(f"ripe-{attack.family}-{attack.origin}-{attack.payload}")
    sig = func(I64, [I64])
    legit, _, _ = _payload_functions(module, sig)
    inp = _input_global(module)
    g_fp = module.add_global("g_fp", ptr(sig), initializer=[ir.Constant(0)])
    dummy = module.add_global("dummy", I64, initializer=[ir.Constant(0)])
    n = attack.buf_words

    mainf = module.add_function("main", func(I64, []))
    b = IRBuilder(mainf.add_block("entry"))
    # Region layout: [buf x n][dst_ptr][val]
    slots, resolve_base = _region_slots(attack, module, b, n + 2)
    dst_slot, val_slot = slots[n], slots[n + 1]
    b.store(b.cast(dummy, I64, "dummy_addr"), dst_slot)
    b.store(ir.FunctionRef(legit), b.cast(g_fp, ptr(ptr(sig)), "gfp"))
    _overflow_copy(b, inp, slots[0], n + 2)
    # The program's own (now attacker-directed) write-through:
    dst = b.load(dst_slot, "dst")
    val = b.load(val_slot, "val")
    b.store(val, b.cast(dst, ptr(I64), "dstp"))
    fpv = b.load(b.cast(g_fp, ptr(ptr(sig)), "gfp2"), "fpv")
    result = b.icall(fpv, [b.const(7)], sig, "res")
    b.syscall(1, [b.const(1), result, b.const(8)])
    b.ret(result)

    def pre_run(image: Image, interp) -> None:
        target = image.function_address[_payload_name(attack)]
        fp_address = image.global_address["g_fp"]
        payload = [n + 2] + [0x41] * n + [fp_address, target]
        _plant(image, payload)

    return module, pre_run


def _build_ret_direct(attack: Attack) -> Tuple[ir.Module, PreRun]:
    """Classic stack smash: linear overflow up to the return address."""
    module = ir.Module(f"ripe-{attack.family}-{attack.origin}")
    sig = func(I64, [I64])
    _payload_functions(module, sig)
    inp = _input_global(module)
    n = attack.buf_words

    vuln = module.add_function("vuln", func(I64, []))
    b = IRBuilder(vuln.add_block("entry"))
    buf = b.alloca(ArrayType(I64, n), "buf")
    _overflow_copy(b, inp, buf, n + 1)
    b.ret(b.const(0))

    mainf = module.add_function("main", func(I64, []))
    b = IRBuilder(mainf.add_block("entry"))
    b.call(vuln, [], "r")
    b.syscall(1, [b.const(1), b.const(0), b.const(8)])
    b.ret(b.const(0))

    def pre_run(image: Image, interp) -> None:
        target = image.function_address[_payload_name(attack)
                                        if attack.payload != "-" else "shellcode"]
        # vuln's frame: [buf x n][saved return address]
        payload = [n + 1] + [0x41] * n + [target]
        _plant(image, payload)

    return module, pre_run


def _build_disclosure_linear(attack: Attack) -> Tuple[ir.Module, PreRun]:
    """Linear overwrite sweeping from a stack buffer toward the saved
    return address — wherever the design put it.  With CPI's adjacent
    safe stack the sweep walks straight into the safe region; guard
    pages (Clang, HQ-SfeStk) or a non-adjacent hidden mapping stop it.
    The sweep length and fill value come from attacker input."""
    module = ir.Module(f"ripe-{attack.family}-{attack.origin}")
    sig = func(I64, [I64])
    _payload_functions(module, sig)
    inp = _input_global(module)
    n = attack.buf_words

    vuln = module.add_function("vuln", func(I64, []))
    b = IRBuilder(vuln.add_block("entry"))
    buf = b.alloca(ArrayType(I64, n), "buf")
    sweep_words = b.load(b.gep_index(inp, b.const(0)), "sweep")
    fill = b.load(b.gep_index(inp, b.const(1)), "fill")
    b.memset(buf, fill, b.mul(sweep_words, b.const(WORD_SIZE)))
    b.ret(b.const(0))

    mainf = module.add_function("main", func(I64, []))
    b = IRBuilder(mainf.add_block("entry"))
    b.call(vuln, [], "r")
    b.syscall(1, [b.const(1), b.const(0), b.const(8)])
    b.ret(b.const(0))

    def pre_run(image: Image, interp) -> None:
        target = image.function_address["shellcode"]
        # vuln's buf address: main has no allocas; main's call pushes the
        # return slot at STACK_TOP - 8 (non-safe-stack designs), then
        # vuln's frame sits below it.
        options = interp.options
        if options.safe_stack:
            buf_address = STACK_TOP - n * WORD_SIZE
        else:
            buf_address = STACK_TOP - WORD_SIZE - n * WORD_SIZE
        if options.safe_stack and interp.safe_stack_base is not None:
            # Disclosure: sweep far enough to cover the safe region.
            end = interp.safe_stack_base + (1 << 16)
        else:
            # Classic: just past the adjacent return slot.
            end = buf_address + (n + 1) * WORD_SIZE
        sweep_words = max((end - buf_address) // WORD_SIZE, n + 1)
        _plant(image, [sweep_words, target])

    return module, pre_run


def _build_disclosure_arb(attack: Attack) -> Tuple[ir.Module, PreRun]:
    """Disclose the return slot via the builtin, then write to it.

    The overflow (in the origin region) supplies the value to write;
    the victim then performs the write-through itself — RIPE's
    self-attack structure with ``__builtin_return_address``."""
    module = ir.Module(f"ripe-{attack.family}-{attack.origin}")
    sig = func(I64, [I64])
    _payload_functions(module, sig)
    inp = _input_global(module)
    n = attack.buf_words

    mainf = module.add_function("main", func(I64, []))
    bm = IRBuilder(mainf.add_block("entry"))
    slots, resolve_base = _region_slots(attack, module, bm, n + 1)
    val_slot = slots[n]
    bm.store(bm.const(0), val_slot)
    _overflow_copy(bm, inp, slots[0], n + 1)
    value = bm.load(val_slot, "val")

    vuln = module.add_function("vuln", func(I64, [I64]))
    b = IRBuilder(vuln.add_block("entry"))
    scratch = b.alloca(I64, "scratch")
    b.store(vuln.params[0], scratch)
    slot = b._emit(ir.RuntimeCall("builtin_ret_slot", [], I64, "slot"))
    b.store(b.load(scratch, "v2"), b.cast(slot, ptr(I64), "slotp"))
    b.ret(b.const(0))

    bm.call(vuln, [value], "r")
    bm.syscall(1, [bm.const(1), bm.const(0), bm.const(8)])
    bm.ret(bm.const(0))

    def pre_run(image: Image, interp) -> None:
        target = image.function_address["shellcode"]
        payload = [n + 1] + [0x41] * n + [target]
        _plant(image, payload)

    return module, pre_run


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def run_attack(attack: Attack, design: str, channel: str = "model") -> RunResult:
    """Execute one attack under one design; ASLR off, execve exempt from
    synchronization, exactly as section 5.2 configures."""
    module, pre_run = build_victim(attack)
    return run_program(
        module, design=design, channel=channel,
        kill_on_violation=True,
        sync_exempt_syscalls={SYS_EXECVE},
        aslr=False,
        pre_run=pre_run)


def attack_succeeded(result: RunResult) -> bool:
    """RIPE's criterion: the exploit achieved its externally visible
    effect (the marker system call ran)."""
    return result.win_executed


def run_ripe(design: str, channel: str = "model",
             dedup: bool = True) -> Dict[str, int]:
    """Run the matrix under ``design``; returns successful-exploit
    counts per origin (a Table 5 row).

    With ``dedup=True`` one representative per (family, origin) runs and
    its family count is credited on success — combination members are
    behaviourally identical under a given design, as in RIPE itself.
    """
    successes = {origin: 0 for origin in ORIGINS}
    for attack in attack_matrix(dedup=dedup):
        result = run_attack(attack, design, channel)
        if attack_succeeded(result):
            successes[attack.origin] += (family_count(attack) if dedup else 1)
    return successes
