"""The RIPE64-style attack suite (section 5.2)."""

from repro.attacks.ripe import Attack, attack_matrix, run_attack, run_ripe

__all__ = ["Attack", "attack_matrix", "run_attack", "run_ripe"]
