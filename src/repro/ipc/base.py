"""Abstract IPC channel interface.

Every primitive from paper Table 2 implements this interface so the
framework, micro-benchmarks, and security tests can swap transports.
A channel moves HerQules messages from a *monitored program* to the
*verifier*, stamping each with the sender's pid (authenticity) and a
transport counter (drop/integrity detection), and charging the sender
the primitive's per-send cycle cost.

Two orthogonal properties distinguish the primitives (Table 2):

* ``append_only`` — once sent, a message cannot be modified or erased
  by the (possibly compromised) sender.  Channels lacking this property
  expose :meth:`corrupt` / :meth:`erase` so the attack suite can
  demonstrate the weakness.
* ``async_validation`` — a send does not block the sender on the
  receiver; cost stays off the critical path (memory write vs system
  call / context switch).

The channel API is *dual-surface*: every channel speaks both the packed
word-stream protocol (``send_raw`` / ``receive_words``, flat
``array('Q')`` batches in the 4-words-per-message wire format of
``repro.core.messages``) and the object protocol (``send`` /
``receive_all``, :class:`~repro.core.messages.Message` lists).  The
base class bridges each surface to the other, so a subclass implements
exactly one side and gets the other for free:

* word-native channels (the AppendWrite family, rings) override
  ``send_raw`` and ``_receive_raw_words`` — the hot path never
  allocates a ``Message``;
* wrapper channels (trace recording, fault injection) override ``send``
  and ``_receive_raw`` and keep operating on objects.

A subclass must override at least one method of each bridged pair;
overriding neither would leave the defaults calling each other.
"""

from __future__ import annotations

import abc
from array import array
from typing import Callable, List, Optional

from repro.core.messages import (Message, MessageDecodeError, Op, decode_batch,
                                 encode_batch)
from repro.sim.process import Process


class ChannelIntegrityError(Exception):
    """The receiver observed evidence of message loss or tampering."""


class ChannelFullError(Exception):
    """The channel buffer is full and the primitive cannot block."""


class Channel(abc.ABC):
    """One sender→verifier message channel.

    The kernel arbitrates channel creation in the real system, which is
    what makes the pid stamp trustworthy; here the channel is constructed
    bound to a sender pid and stamps it on every message.

    The receive path is split in two so fault injection and the verifier
    restart path can reach the undecoded transport stream:
    :meth:`_receive_raw_words` / :meth:`_receive_raw` drain the
    transport buffer, and :meth:`_validate_words` / :meth:`_validate`
    apply the primitive's integrity discipline (counter checking, for
    the AppendWrite family).  ``receive_words`` / ``receive_all`` are
    their compositions and remain the verifier-facing entry points.
    """

    #: Primitive key into :data:`repro.ipc.latency.SEND_NS`.
    primitive: str = ""
    #: Whether sent messages are immutable from the sender's side.
    append_only: bool = True
    #: Whether validation is decoupled from the sender's critical path.
    async_validation: bool = True
    #: Human-readable primary cost, as in Table 2.
    primary_cost: str = ""
    #: Observability hook (:class:`repro.obs.Observer`); the framework
    #: wires it onto the transport channel per run.  None keeps every
    #: transport emit site at a single predicate — the send datapath
    #: itself is never instrumented (send totals are collected as
    #: end-of-run gauges instead).
    observer = None

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity <= 0:
            raise ValueError("channel capacity must be positive")
        self.capacity = capacity
        self._counter = 0
        self.sent_total = 0
        self.dropped_total = 0
        #: Kernel/framework hook invoked when a send finds the buffer
        #: full: the wired handler drains the verifier so the sender can
        #: retry instead of failing outright (fail-closed backoff).
        self._on_full: Optional[Callable[["Channel"], None]] = None

    def _next_counter(self) -> int:
        self._counter += 1
        return self._counter

    def _notify_full(self) -> None:
        """Give the kernel-side drain hook a chance to make room."""
        if self.observer is not None:
            self.observer.ipc_full()
        if self._on_full is not None:
            self._on_full(self)

    # -- send surface -------------------------------------------------------

    def send(self, sender: Process, message: Message) -> None:
        """Transmit ``message`` from ``sender``, charging its cycle cost.

        Raises :class:`ChannelFullError` when the buffer is full and the
        drain hook could not make room; the sender's runtime maps that
        to bounded retry and, ultimately, a fail-closed kill.
        """
        self.send_raw(sender, int(message.op), message.arg0, message.arg1,
                      message.aux)

    def send_raw(self, sender: Process, op: int, arg0: int = 0,
                 arg1: int = 0, aux: int = 0) -> None:
        """Word-path send: the flat-field twin of :meth:`send`.

        Word-native channels override this and stamp pid/counter by
        writing words directly — no ``Message`` allocation, no
        ``with_transport`` copy.  The bridge default routes through
        :meth:`send` for wrapper channels that only speak objects.
        """
        self.send(sender, Message(Op(op), arg0, arg1, aux))

    # -- receive surface ----------------------------------------------------

    def _receive_raw_words(self) -> array:
        """Drain the transport buffer as a flat word stream, unvalidated."""
        return encode_batch(self._receive_raw())

    def _receive_raw(self) -> List[Message]:
        """Drain the transport buffer without integrity validation."""
        try:
            return decode_batch(self._receive_raw_words())
        except MessageDecodeError as error:
            # Fail closed: a stream the trusted codec cannot decode is
            # integrity evidence, never a crash.
            raise ChannelIntegrityError(
                f"undecodable message stream: {error}") from error

    def _validate_words(self, words: array) -> array:
        """Word-path integrity discipline; see :meth:`_validate`."""
        return words

    def _validate(self, messages: List[Message]) -> List[Message]:
        """Apply the primitive's receive-side integrity discipline.

        Raises :class:`ChannelIntegrityError` if the transport detects a
        counter gap (dropped or overwritten messages).  The base
        implementation is a no-op: kernel-mediated primitives trust the
        kernel copy and carry no transport counter discipline.
        """
        return messages

    def receive_words(self) -> array:
        """Drain all pending traffic as one packed word stream.

        The verifier's batch dispatcher consumes this directly; word
        order is send order.  Raises :class:`ChannelIntegrityError` on a
        counter gap, exactly like :meth:`receive_all`.
        """
        return self._validate_words(self._receive_raw_words())

    def receive_all(self) -> List[Message]:
        """Drain and return all pending messages, in order.

        Raises :class:`ChannelIntegrityError` if the transport detects a
        counter gap (dropped or overwritten messages).
        """
        return self._validate(self._receive_raw())

    def resync(self) -> List[Message]:
        """Discard in-flight messages and realign integrity state.

        Called by the verifier restart path (section 3.4): whatever was
        pending at the crash is lost; the channel realigns its receive
        discipline so post-restart traffic does not trip a spurious
        counter gap.  Returns the discarded messages so the caller can
        conservatively kill their senders (fail closed).
        """
        try:
            return self._receive_raw()
        except ChannelIntegrityError:
            return []

    @abc.abstractmethod
    def pending(self) -> int:
        """Number of messages waiting to be received."""

    def close(self) -> None:
        """Release transport resources held outside this process.

        Most channels are pure in-process models and hold nothing; the
        base implementation is a no-op.  Channels backed by real OS
        objects (the SPSC shared-memory ring) override this to close
        and unlink their segments.  Idempotent.
        """

    # -- integrity-attack surface (non-append-only channels only) ----------

    def corrupt(self, index: int, message: Message) -> None:
        """Overwrite the ``index``-th pending message (attack model).

        Only meaningful for channels without append-only semantics;
        append-only channels refuse.
        """
        raise PermissionError(
            f"{type(self).__name__} is append-only; sent messages are immutable"
        )

    def erase(self, count: Optional[int] = None) -> None:
        """Erase pending messages (attack model); refuse if append-only."""
        raise PermissionError(
            f"{type(self).__name__} is append-only; sent messages are immutable"
        )
