"""Abstract IPC channel interface.

Every primitive from paper Table 2 implements this interface so the
framework, micro-benchmarks, and security tests can swap transports.
A channel moves :class:`~repro.core.messages.Message` objects from a
*monitored program* to the *verifier*, stamping each with the sender's
pid (authenticity) and a transport counter (drop/integrity detection),
and charging the sender the primitive's per-send cycle cost.

Two orthogonal properties distinguish the primitives (Table 2):

* ``append_only`` — once sent, a message cannot be modified or erased
  by the (possibly compromised) sender.  Channels lacking this property
  expose :meth:`corrupt` / :meth:`erase` so the attack suite can
  demonstrate the weakness.
* ``async_validation`` — a send does not block the sender on the
  receiver; cost stays off the critical path (memory write vs system
  call / context switch).
"""

from __future__ import annotations

import abc
from typing import List, Optional

from repro.core.messages import Message
from repro.sim.process import Process


class ChannelIntegrityError(Exception):
    """The receiver observed evidence of message loss or tampering."""


class ChannelFullError(Exception):
    """The channel buffer is full and the primitive cannot block."""


class Channel(abc.ABC):
    """One sender→verifier message channel.

    The kernel arbitrates channel creation in the real system, which is
    what makes the pid stamp trustworthy; here the channel is constructed
    bound to a sender pid and stamps it on every message.
    """

    #: Primitive key into :data:`repro.ipc.latency.SEND_NS`.
    primitive: str = ""
    #: Whether sent messages are immutable from the sender's side.
    append_only: bool = True
    #: Whether validation is decoupled from the sender's critical path.
    async_validation: bool = True
    #: Human-readable primary cost, as in Table 2.
    primary_cost: str = ""

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity <= 0:
            raise ValueError("channel capacity must be positive")
        self.capacity = capacity
        self._counter = 0
        self.sent_total = 0
        self.dropped_total = 0

    def _next_counter(self) -> int:
        self._counter += 1
        return self._counter

    @abc.abstractmethod
    def send(self, sender: Process, message: Message) -> None:
        """Transmit ``message`` from ``sender``, charging its cycle cost."""

    @abc.abstractmethod
    def receive_all(self) -> List[Message]:
        """Drain and return all pending messages, in order.

        Raises :class:`ChannelIntegrityError` if the transport detects a
        counter gap (dropped or overwritten messages).
        """

    @abc.abstractmethod
    def pending(self) -> int:
        """Number of messages waiting to be received."""

    # -- integrity-attack surface (non-append-only channels only) ----------

    def corrupt(self, index: int, message: Message) -> None:
        """Overwrite the ``index``-th pending message (attack model).

        Only meaningful for channels without append-only semantics;
        append-only channels refuse.
        """
        raise PermissionError(
            f"{type(self).__name__} is append-only; sent messages are immutable"
        )

    def erase(self, count: Optional[int] = None) -> None:
        """Erase pending messages (attack model); refuse if append-only."""
        raise PermissionError(
            f"{type(self).__name__} is append-only; sent messages are immutable"
        )
