"""Lock-free SPSC ring over OS shared memory: the shard transport.

The flat message path (``repro.core.messages``) makes every HerQules
message exactly four packed 64-bit words — the shape that maps directly
onto a single-producer / single-consumer ring buffer in a
``multiprocessing.shared_memory`` block.  :class:`SpscRing` is that
ring: the monitored side (or the sharding coordinator acting for it)
publishes word batches, and a verifier shard — possibly a different OS
process — consumes them, with no lock on either side.

Layout of the backing segment (64-bit little-endian words)::

    word 0   head     consumer position  (words consumed, ever-rising)
    word 1   acked    consumer dispatch position (words validated)
    word 8   tail     producer position  (words published, ever-rising)
    word 9   stop     producer -> consumer shutdown flag
    word 16+ data     capacity_words payload slots (power of two)

``head``/``acked`` share a cache line written only by the consumer;
``tail``/``stop`` share one written only by the producer — the classic
SPSC split, so steady-state operation ping-pongs no lines beyond the
payload itself.  Positions are free-running 64-bit counters; the slot
index is ``position & (capacity_words - 1)``.

Memory-ordering contract (the lock-free part): the producer copies the
payload words *before* the single 8-byte store that advances ``tail``,
and the consumer reads ``tail`` *before* copying payload — on x86-64's
total store order (and via the GIL-free C ``memcpy`` CPython performs
for memoryview slice assignment) a consumer therefore never observes a
partially-written message.  Whole messages only: both
:meth:`publish_words` and the free-space computation round down to a
multiple of :data:`~repro.core.messages.MESSAGE_WORDS`, so ``tail``
always lands on a message boundary and torn *messages* are impossible
by construction (``tests/test_spsc_ring.py`` hammers this with a real
producer process).

Both endpoints keep *cached* copies of the opposite index and refresh
lazily — the producer re-reads ``head`` only when its cached view says
the ring is full, the consumer re-reads ``tail`` only when its cached
view says the ring is empty — so an uncontended publish or consume
touches the shared header exactly once (its own release store).
"""

from __future__ import annotations

from array import array
from typing import Optional

from repro.core.messages import MESSAGE_WORDS, Message, _MASK32, _MASK64
from repro.ipc.base import Channel, ChannelFullError
from repro.ipc.latency import send_cycles
from repro.ipc.shared_memory import (attach_segment, create_segment,
                                     release_segment)
from repro.sim.process import Process

#: Header layout — the single source of truth for the 16 reserved
#: words ahead of the payload (two cache lines).  The model checker
#: (``repro.mc.model``) imports these same offsets, so the abstract
#: protocol model and the implementation can never disagree about
#: which word is which.
HEADER_WORDS = 16
#: Consumer position (words consumed, free-running).  Consumer-written.
HDR_HEAD = 0
#: Consumer dispatch position (words validated).  Consumer-written.
HDR_ACKED = 1
#: Producer position (words published, free-running).  Producer-written.
HDR_TAIL = 8
#: Producer → consumer shutdown flag.  Producer-written.
HDR_STOP = 9
#: Offsets 2–7 and 10–15 are reserved padding: they keep the
#: consumer-written and producer-written words on separate cache lines.
_HEAD = HDR_HEAD
_ACKED = HDR_ACKED
_TAIL = HDR_TAIL
_STOP = HDR_STOP

_EMPTY = array("Q")


class SpscRing:
    """One single-producer / single-consumer shared-memory word ring."""

    def __init__(self, segment, capacity_words: int, owner: bool) -> None:
        if capacity_words < MESSAGE_WORDS or \
                capacity_words & (capacity_words - 1):
            raise ValueError("capacity_words must be a power of two >= "
                             f"{MESSAGE_WORDS}, got {capacity_words}")
        self._segment = segment
        self._owner = owner
        self.capacity_words = capacity_words
        self._mask = capacity_words - 1
        #: Raw byte view (for bulk copy-out) and word view (for header
        #: stores and bulk copy-in) over the same mapping.
        self._raw = segment.buf
        self._words = memoryview(segment.buf).cast("Q")
        #: Producer-local: its own tail plus a lazy view of head.
        self._tail_local = self._words[_TAIL]
        self._cached_head = self._words[_HEAD]
        #: Consumer-local: its own head plus a lazy view of tail.
        self._head_local = self._words[_HEAD]
        self._cached_tail = self._words[_TAIL]
        self._closed = False
        #: Concurrency probe (``repro.mc.race``), obs-layer pattern:
        #: ``None`` by default, so every emit site costs one predicate.
        self._probe = None
        self._probe_producer = "producer"
        self._probe_consumer = "consumer"

    # -- construction -------------------------------------------------------

    @classmethod
    def create(cls, capacity_words: int = 1 << 15,
               name: Optional[str] = None) -> "SpscRing":
        """Allocate a fresh ring; the creating process owns the segment."""
        size = (HEADER_WORDS + capacity_words) * 8
        return cls(create_segment(size, name=name), capacity_words,
                   owner=True)

    @classmethod
    def attach(cls, name: str, capacity_words: int) -> "SpscRing":
        """Map an existing ring (the consumer side of a worker process)."""
        return cls(attach_segment(name), capacity_words, owner=False)

    @property
    def name(self) -> str:
        return self._segment.name

    # -- concurrency instrumentation ----------------------------------------

    def attach_probe(self, probe, producer: str = "producer",
                     consumer: str = "consumer") -> None:
        """Attach a happens-before probe (``repro.mc.race.RingProbe``).

        The probe sees every shared-memory access this endpoint makes,
        classified by protocol role: header words are *sync* accesses
        (they are single 8-byte loads/stores, atomic on the platforms
        we run on), payload slots are *data* accesses whose ordering
        must be derivable from the sync accesses alone — exactly what
        the FastTrack-style detector re-proves.  ``producer`` /
        ``consumer`` name the actors charged for each side's
        operations, so one process (the inline coordinator) can still
        be modelled as the two logical protocol roles.
        """
        self._probe = probe
        self._probe_producer = producer
        self._probe_consumer = consumer
        # The constructor snapshotted the opposite indices *before*
        # instrumentation, so an endpoint attaching to a ring that
        # already has traffic would do its first copy on an unrecorded
        # acquire — which the detector would rightly flag.  Invalidate
        # both cached views: the first publish/consume then re-reads
        # the opposite index through the probe.
        self._cached_head = self._tail_local - self.capacity_words
        self._cached_tail = self._head_local

    # -- producer side ------------------------------------------------------

    def publish_words(self, words, start: int = 0) -> int:
        """Copy whole messages from ``words[start:]`` into the ring.

        Returns the number of words published (a multiple of
        :data:`MESSAGE_WORDS`; zero when the ring is full).  The copy is
        at most two C-level slice assignments (wrap-around), followed by
        the single release store of ``tail``.
        """
        tail = self._tail_local
        want = (len(words) - start) & ~(MESSAGE_WORDS - 1)
        if want <= 0:
            return 0
        probe = self._probe
        free = self.capacity_words - (tail - self._cached_head)
        if free < want:
            # Lazy refresh: only now pay the cross-core header read.
            self._cached_head = self._words[_HEAD]
            if probe is not None:
                probe.sync_load(self._probe_producer, HDR_HEAD,
                                self._cached_head)
            free = self.capacity_words - (tail - self._cached_head)
        n = min(want, free & ~(MESSAGE_WORDS - 1))
        if n <= 0:
            return 0
        if not isinstance(words, memoryview):
            words = memoryview(words)
        pos = tail & self._mask
        first = min(n, self.capacity_words - pos)
        base = HEADER_WORDS + pos
        self._words[base:base + first] = words[start:start + first]
        if first < n:
            self._words[HEADER_WORDS:HEADER_WORDS + n - first] = \
                words[start + first:start + n]
        if probe is not None:
            probe.data_write(self._probe_producer, pos, first)
            if first < n:
                probe.data_write(self._probe_producer, 0, n - first)
        # Publish: data stores above are ordered before this tail store.
        self._tail_local = tail + n
        self._words[_TAIL] = tail + n
        if probe is not None:
            probe.sync_store(self._probe_producer, HDR_TAIL, tail + n)
        return n

    def request_stop(self) -> None:
        """Producer-side shutdown signal for a free-running consumer."""
        self._words[_STOP] = 1
        if self._probe is not None:
            self._probe.sync_store(self._probe_producer, HDR_STOP, 1)

    # -- consumer side ------------------------------------------------------

    def consume_words(self, max_words: Optional[int] = None) -> array:
        """Drain published words (whole messages), advancing ``head``.

        Returns an ``array('Q')`` (possibly empty).  The cached tail is
        refreshed only when it shows nothing pending, so a busy
        consumer alternates between draining its cached view and one
        header read per empty-looking call.
        """
        probe = self._probe
        head = self._head_local
        tail = self._cached_tail
        if tail == head:
            tail = self._cached_tail = self._words[_TAIL]
            if probe is not None:
                probe.sync_load(self._probe_consumer, HDR_TAIL, tail)
            if tail == head:
                return _EMPTY[:]
        n = tail - head
        if max_words is not None and n > max_words:
            n = max_words & ~(MESSAGE_WORDS - 1)
            if n <= 0:
                return _EMPTY[:]
        out = array("Q")
        pos = head & self._mask
        first = min(n, self.capacity_words - pos)
        base = (HEADER_WORDS + pos) * 8
        out.frombytes(self._raw[base:base + first * 8])
        if first < n:
            out.frombytes(self._raw[HEADER_WORDS * 8:
                                    (HEADER_WORDS + n - first) * 8])
        if probe is not None:
            probe.data_read(self._probe_consumer, pos, first)
            if first < n:
                probe.data_read(self._probe_consumer, 0, n - first)
        self._head_local = head + n
        self._words[_HEAD] = head + n
        if probe is not None:
            probe.sync_store(self._probe_consumer, HDR_HEAD, head + n)
        return out

    def ack(self, words_dispatched: int) -> None:
        """Record the consumer's *dispatch* position (validated words).

        ``head`` says the words left the ring; ``acked`` says the
        verifier actually ran them through policy dispatch — the
        position shard ack aggregation (epoch = min over shards) reads.
        """
        self._words[_ACKED] = words_dispatched
        if self._probe is not None:
            self._probe.sync_store(self._probe_consumer, HDR_ACKED,
                                   words_dispatched)

    def stop_requested(self) -> bool:
        stop = bool(self._words[_STOP])
        if self._probe is not None:
            self._probe.sync_load(self._probe_consumer, HDR_STOP,
                                  int(stop))
        return stop

    # -- shared observers ----------------------------------------------------

    def published(self) -> int:
        return self._words[_TAIL]

    def consumed(self) -> int:
        return self._words[_HEAD]

    def acked(self) -> int:
        return self._words[_ACKED]

    def occupancy_words(self) -> int:
        """Words currently in flight (published, not yet consumed)."""
        return self._words[_TAIL] - self._words[_HEAD]

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the mapping (and unlink it, if this side owns it)."""
        if self._closed:
            return
        self._closed = True
        self._words.release()
        release_segment(self._segment, unlink=self._owner if self._owner
                        else False)

    def __del__(self):
        # A ring abandoned without close() must not poison interpreter
        # shutdown: the cast word view exports a pointer into the
        # segment buffer, and ``SharedMemory.__del__`` raises
        # ``BufferError`` (a stderr traceback) if it is still alive.
        # The ring holds the only reference to the segment, so this
        # runs first and the segment then closes cleanly.
        try:
            self._words.release()
        except Exception:
            pass


class SpscRingChannel(Channel):
    """The SPSC ring as a Table-2-style transport primitive (``spsc``).

    Semantically the ring sits where raw shared memory does: one memory
    write per send, validation fully off the critical path — and, like
    ``shm``, no append-only enforcement (the producer owns the mapping,
    so ``corrupt``/``erase`` model the compromised-writer attack).  What
    it adds over :class:`~repro.ipc.shared_memory.SharedMemoryChannel`
    is that the buffer is a *real* OS shared-memory block another
    process can drain, which is what the sharded verifier scale-out
    runs on.
    """

    primitive = "spsc"
    append_only = False
    async_validation = True
    primary_cost = "Mem. Write"

    def __init__(self, capacity: int = 1 << 13,
                 ring: Optional[SpscRing] = None) -> None:
        super().__init__(capacity)
        capacity_words = capacity * MESSAGE_WORDS
        if capacity_words & (capacity_words - 1):
            raise ValueError("spsc channel capacity must be a power of two")
        self.ring = ring if ring is not None else \
            SpscRing.create(capacity_words=capacity_words)
        self._send_cost = send_cycles(self.primitive)
        self._scratch = array("Q", [0, 0, 0, 0])

    def send_raw(self, sender: Process, op: int, arg0: int = 0,
                 arg1: int = 0, aux: int = 0) -> None:
        scratch = self._scratch
        scratch[0] = (op & _MASK32) | ((sender.pid & _MASK32) << 32)
        scratch[1] = arg0 & _MASK64
        scratch[2] = arg1 & _MASK64
        counter = self._counter + 1
        scratch[3] = (aux & _MASK32) | ((counter & _MASK32) << 32)
        if self.ring.publish_words(scratch) == 0:
            # Full: give the kernel drain hook one chance, then fail.
            self._notify_full()
            if self.ring.publish_words(scratch) == 0:
                raise ChannelFullError("spsc ring full")
        self._counter = counter
        sender.cycles.charge_ipc(self._send_cost)
        self.sent_total += 1

    def _receive_raw_words(self) -> array:
        ring = self.ring
        words = ring.consume_words()
        while True:
            # A second consume refreshes the lazily-cached tail, so a
            # drain observes everything published before it started.
            more = ring.consume_words()
            if not more:
                return words
            words += more

    def pending(self) -> int:
        return self.ring.occupancy_words() // MESSAGE_WORDS

    def close(self) -> None:
        self.ring.close()

    # -- the compromised-writer attack surface ------------------------------

    def corrupt(self, index: int, message: Message) -> None:
        """Overwrite the ``index``-th in-flight message, counter intact."""
        ring = self.ring
        pending = ring.occupancy_words() // MESSAGE_WORDS
        if index < 0:
            index += pending
        if not 0 <= index < pending:
            raise IndexError("message index out of range")
        words = ring._words
        mask = ring._mask
        head = words[_HEAD] + index * MESSAGE_WORDS
        slots = [HEADER_WORDS + ((head + i) & mask)
                 for i in range(MESSAGE_WORDS)]
        pid = words[slots[0]] >> 32
        counter = words[slots[3]] >> 32
        words[slots[0]] = (int(message.op) & _MASK32) | (pid << 32)
        words[slots[1]] = message.arg0 & _MASK64
        words[slots[2]] = message.arg1 & _MASK64
        words[slots[3]] = (message.aux & _MASK32) | (counter << 32)

    def erase(self, count: Optional[int] = None) -> None:
        """Rewind the producer index: the verifier never sees the tail."""
        ring = self.ring
        pending = ring.occupancy_words() // MESSAGE_WORDS
        if count is None:
            count = pending
        if count < 0 or count > pending:
            raise ValueError("erase count out of range")
        if count:
            rewound = ring._tail_local - count * MESSAGE_WORDS
            ring._tail_local = rewound
            ring._words[_TAIL] = rewound
            self._counter -= count
