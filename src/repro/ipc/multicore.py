"""Multi-writer AMRs, message ordering, and bidirectional channels.

Section 2.3.2: AppendWrite-uarch configures AMRs through *core-local*
registers, so cross-core writers are not supported (that would cost
cache-coherency traffic); instead "each writer core must be assigned a
unique AMR, although a single reader core can iteratively receive
messages on all mapped AMRs".  When a policy needs cross-core message
ordering, "individual messages can include the value of a global
counter (e.g. processor timestamp counter)".

Section 4.3 adds *bidirectional communication* "between two processor
cores, e.g., by allocating one buffer for each core, and configuring
each core to transmit append-only messages to the other buffer".

This module implements all three patterns on top of
:class:`~repro.ipc.appendwrite.AppendWriteUArch`.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.core.messages import Message
from repro.ipc.appendwrite import AppendWriteUArch
from repro.sim.memory import Memory
from repro.sim.process import Process


class TimestampCounter:
    """A monotonically increasing global counter (the TSC).

    Shared by every core; sampling it is how concurrent writers
    establish a total order over their messages.
    """

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def read(self) -> int:
        return next(self._counter)


class PerCoreAMRs:
    """One AMR per writer core, drained by a single reader.

    ``send(core, process, message)`` appends to that core's AMR; the
    reader's :meth:`receive_all` iterates over every mapped AMR.  With
    ``order_by_timestamp`` each message is stamped from the shared
    :class:`TimestampCounter` (carried in the ``aux`` field) and the
    merged stream is sorted by it, restoring a global order that the
    per-core buffers alone cannot provide.
    """

    #: AMR virtual-address stride between cores.
    REGION_STRIDE = 0x0100_0000

    def __init__(self, cores: int, capacity_per_core: int = 1 << 12,
                 order_by_timestamp: bool = True,
                 tsc: Optional[TimestampCounter] = None) -> None:
        if cores <= 0:
            raise ValueError("need at least one core")
        self.cores = cores
        self.order_by_timestamp = order_by_timestamp
        self.tsc = tsc if tsc is not None else TimestampCounter()
        memory = Memory()  # the verifier's address space
        self.channels: List[AppendWriteUArch] = [
            AppendWriteUArch(capacity=capacity_per_core, memory=memory,
                             base=0x4000_0000 + core * self.REGION_STRIDE)
            for core in range(cores)
        ]

    def send(self, core: int, sender: Process, message: Message) -> None:
        """Append from ``core``; cross-core sends are a configuration
        error, exactly as the hardware's core-local registers make them."""
        if not 0 <= core < self.cores:
            raise IndexError(f"core {core} has no AMR (have {self.cores})")
        aux = self.tsc.read() if self.order_by_timestamp else message.aux
        self.channels[core].send_raw(sender, int(message.op), message.arg0,
                                     message.arg1, aux)

    def receive_all(self) -> List[Message]:
        """Drain every core's AMR; globally ordered if timestamping."""
        merged: List[Tuple[int, int, Message]] = []
        for core, channel in enumerate(self.channels):
            for message in channel.receive_all():
                merged.append((message.aux if self.order_by_timestamp else 0,
                               core, message))
        merged.sort(key=lambda item: (item[0], item[1]))
        return [message for _, _, message in merged]

    def pending(self) -> int:
        return sum(channel.pending() for channel in self.channels)


class BidirectionalChannel:
    """Two cores exchanging append-only messages (section 4.3).

    Each endpoint owns a receive buffer that only the *other* endpoint's
    AppendWrite datapath may write — both directions retain the
    append-only integrity guarantee.
    """

    def __init__(self, capacity: int = 1 << 12) -> None:
        memory = Memory()
        self._towards: Dict[int, AppendWriteUArch] = {
            0: AppendWriteUArch(capacity=capacity, memory=memory,
                                base=0x5000_0000),
            1: AppendWriteUArch(capacity=capacity, memory=memory,
                                base=0x5800_0000),
        }

    def send(self, from_core: int, sender: Process,
             message: Message) -> None:
        """Send from ``from_core`` to the opposite endpoint."""
        if from_core not in (0, 1):
            raise IndexError("bidirectional channel has endpoints 0 and 1")
        self._towards[1 - from_core].send(sender, message)

    def receive(self, at_core: int) -> List[Message]:
        """Messages addressed to ``at_core``."""
        if at_core not in (0, 1):
            raise IndexError("bidirectional channel has endpoints 0 and 1")
        return self._towards[at_core].receive_all()
