"""Per-send latencies for every IPC primitive (paper Table 2).

The paper measures the average runtime of a micro-benchmark that
repeatedly sends messages through each primitive; we adopt those
measured costs as the cycle charge per simulated send, converting
nanoseconds to cycles at the testbed's 5 GHz clock (A.3.2).  These
constants are the *only* place absolute timings enter the reproduction:
every figure reports relative performance, which depends on these costs
scaled by per-benchmark message density.
"""

from __future__ import annotations

from repro.sim.cycles import ns_to_cycles

#: Measured cost of one message send, in nanoseconds (paper Table 2).
SEND_NS = {
    "mq": 146.0,             # POSIX message queue (system call)
    "pipe": 316.0,           # named pipe (system call)
    "socket": 346.0,         # Unix-domain socket (system call)
    "shm": 12.0,             # raw shared-memory write (no integrity)
    "lwc": 2010.0,           # light-weight context switch, one way [70]
    "fpga": 102.0,           # AppendWrite-FPGA (uncached MMIO + PCIe TLP)
    "uarch": 2.0,            # AppendWrite-uarch ("< 2 ns"): ~ one store
    # The software-only model of AppendWrite-uarch (HQ-*-MODEL): a
    # shared-memory fetch/check/increment of AppendAddr plus the message
    # copy.  The paper gives no Table 2 row for it; it is bounded below
    # by the shm write (12 ns) plus bookkeeping.  Calibrated so that the
    # MODEL-vs-SIM gap of Figure 4 is reproduced.
    "model": 11.0,
    # Lock-free SPSC ring over OS shared memory (the sharded-verifier
    # transport): same raw-store send path as shm — the ring index
    # bookkeeping is register arithmetic, not an extra memory round
    # trip — so it inherits the Table 2 shared-memory cost.
    "spsc": 12.0,
}


def send_cycles(primitive: str) -> float:
    """Cycle cost of one send over ``primitive`` (keys of :data:`SEND_NS`)."""
    return ns_to_cycles(SEND_NS[primitive])
