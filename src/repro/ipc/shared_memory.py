"""Raw shared-memory ring buffer: fast but lacks message integrity.

A plain shared mapping costs only a memory write per send (12 ns, Table
2) and keeps validation off the critical path — but the writer retains
write access to the whole ring, so a compromised program can corrupt or
erase previously-written messages before the verifier reads them
(section 2.3: "fast IPC primitives, like shared memory, lack semantic
access control").  :meth:`corrupt` and :meth:`erase` expose exactly
that attack surface; ``tests/test_ipc_security.py`` demonstrates the
resulting evidence destruction, which AppendWrite is designed to
prevent.
"""

from __future__ import annotations

from array import array
from typing import Optional

from repro.core.messages import MESSAGE_WORDS, Message, _MASK32, _MASK64
from repro.ipc.base import Channel, ChannelFullError
from repro.ipc.latency import send_cycles
from repro.sim.process import Process


class SharedMemoryChannel(Channel):
    """Writer-shared ring buffer with no append-only enforcement."""

    primitive = "shm"
    append_only = False
    async_validation = True
    primary_cost = "Mem. Write"

    def __init__(self, capacity: int = 1 << 16) -> None:
        super().__init__(capacity)
        self._ring = array("Q")
        self._send_cost = send_cycles(self.primitive)
        self._capacity_words = capacity * MESSAGE_WORDS

    def send_raw(self, sender: Process, op: int, arg0: int = 0,
                 arg1: int = 0, aux: int = 0) -> None:
        if len(self._ring) >= self._capacity_words:
            # Spin until the verifier drains the ring (drain hook), then
            # re-check; a still-full ring fails the send.
            self._notify_full()
        # Draining swaps the ring out, so re-read it after the hook.
        ring = self._ring
        if len(ring) >= self._capacity_words:
            raise ChannelFullError("shared-memory ring full")
        sender.cycles.charge_ipc(self._send_cost)
        counter = self._counter + 1
        self._counter = counter
        ring.append((op & _MASK32) | ((sender.pid & _MASK32) << 32))
        ring.append(arg0 & _MASK64)
        ring.append(arg1 & _MASK64)
        ring.append((aux & _MASK32) | ((counter & _MASK32) << 32))
        self.sent_total += 1

    def _receive_raw_words(self) -> array:
        words = self._ring
        self._ring = array("Q")
        return words

    def pending(self) -> int:
        return len(self._ring) // MESSAGE_WORDS

    # -- the attack surface --------------------------------------------------

    def corrupt(self, index: int, message: Message) -> None:
        """Overwrite a pending message in place, preserving its counter.

        Because the writer owns the mapping, the replacement is
        indistinguishable from a legitimate message: the counter value is
        reused, so the verifier sees no gap.
        """
        ring = self._ring
        base = index * MESSAGE_WORDS
        if index < 0:
            base += len(ring)
        if base < 0 or base + MESSAGE_WORDS > len(ring):
            raise IndexError("message index out of range")
        pid = ring[base] >> 32
        counter = ring[base + 3] >> 32
        ring[base] = (int(message.op) & _MASK32) | (pid << 32)
        ring[base + 1] = message.arg0 & _MASK64
        ring[base + 2] = message.arg1 & _MASK64
        ring[base + 3] = (message.aux & _MASK32) | (counter << 32)

    def erase(self, count: Optional[int] = None) -> None:
        """Erase the most recent ``count`` pending messages (all if None).

        Models a compromised writer rewinding the ring's head index; the
        verifier simply never observes the erased messages.  Counters are
        rewound too, so no gap is detectable.
        """
        pending = len(self._ring) // MESSAGE_WORDS
        if count is None:
            count = pending
        if count < 0 or count > pending:
            raise ValueError("erase count out of range")
        if count:
            del self._ring[-count * MESSAGE_WORDS:]
            self._counter -= count
