"""Raw shared-memory ring buffer: fast but lacks message integrity.

A plain shared mapping costs only a memory write per send (12 ns, Table
2) and keeps validation off the critical path — but the writer retains
write access to the whole ring, so a compromised program can corrupt or
erase previously-written messages before the verifier reads them
(section 2.3: "fast IPC primitives, like shared memory, lack semantic
access control").  :meth:`corrupt` and :meth:`erase` expose exactly
that attack surface; ``tests/test_ipc_security.py`` demonstrates the
resulting evidence destruction, which AppendWrite is designed to
prevent.
"""

from __future__ import annotations

import atexit
import os
from array import array
from typing import Dict, Optional

from repro.core.messages import MESSAGE_WORDS, Message, _MASK32, _MASK64
from repro.ipc.base import Channel, ChannelFullError
from repro.ipc.latency import send_cycles
from repro.sim.process import Process

# ---------------------------------------------------------------------------
# OS shared-memory segment lifecycle
# ---------------------------------------------------------------------------
#
# Everything in this repository that maps a real
# ``multiprocessing.shared_memory.SharedMemory`` block (the SPSC rings
# of :mod:`repro.ipc.spsc_ring`, and through them the sharded verifier
# and its bench) allocates it through :func:`create_segment` and maps an
# existing block through :func:`attach_segment`.  Centralizing the
# lifecycle fixes two failure modes of the stdlib defaults:
#
# * **Creator leak** — a segment whose owner exits without ``unlink()``
#   stays in ``/dev/shm`` forever.  Created segments are tracked here
#   and an ``atexit`` hook closes *and unlinks* whatever is still
#   mapped, so even an abnormal-but-orderly exit (an uncaught
#   exception, a chaos run aborting mid-sweep) leaves nothing behind.
# * **Attacher double-accounting** — before Python 3.13 every
#   ``SharedMemory(name=...)`` *attach* also registers the segment with
#   the process's ``resource_tracker``, so a consumer process that dies
#   mid-drain (a killed verifier shard) triggers a "leaked
#   shared_memory" warning at tracker shutdown and — worse — unlinks a
#   segment it never owned out from under the creator.
#   :func:`attach_segment` unregisters the mapping immediately:
#   ownership stays with the creator, and killing an attached shard is
#   silent and safe.

#: Segments created (and therefore owned) by this process, by name.
#: Values are ``(segment, creator_pid)``: a forked child inherits this
#: dict but must never unlink the parent's segments, so ownership is
#: pid-qualified and checked at release time.
_OWNED_SEGMENTS: Dict[str, tuple] = {}
_CLEANUP_REGISTERED = False


def _shared_memory_module():
    # Imported lazily so merely importing repro.ipc never drags in
    # multiprocessing (and its resource tracker) for runs that use only
    # the in-process channel models.
    from multiprocessing import shared_memory
    return shared_memory


def _cleanup_owned_segments() -> None:
    """atexit hook: release every still-owned segment, best effort."""
    for name in list(_OWNED_SEGMENTS):
        release_segment(_OWNED_SEGMENTS[name][0])


def create_segment(size: int, name: Optional[str] = None):
    """Create and own a shared-memory block; unlinked at process exit.

    The returned object is a ``SharedMemory`` instance.  Call
    :func:`release_segment` when done; anything still owned when the
    process exits is closed and unlinked by the atexit hook, so chaos
    runs that abort mid-sweep cannot leak ``/dev/shm`` entries.
    """
    global _CLEANUP_REGISTERED
    shared_memory = _shared_memory_module()
    if name is None:
        # Collision-proof default: pid-qualified, process-local counter.
        base = f"repro-{os.getpid()}"
        suffix = len(_OWNED_SEGMENTS)
        while f"{base}-{suffix}" in _OWNED_SEGMENTS:
            suffix += 1
        name = f"{base}-{suffix}"
    segment = shared_memory.SharedMemory(name=name, create=True, size=size)
    _OWNED_SEGMENTS[segment.name] = (segment, os.getpid())
    if not _CLEANUP_REGISTERED:
        atexit.register(_cleanup_owned_segments)
        _CLEANUP_REGISTERED = True
    return segment


def attach_segment(name: str):
    """Map an existing segment without taking ownership of its lifetime.

    Unregisters the mapping from this process's ``resource_tracker`` so
    a consumer that dies (or is killed) mid-drain neither warns about a
    "leaked" segment nor unlinks the creator's block behind its back.
    """
    shared_memory = _shared_memory_module()
    segment = shared_memory.SharedMemory(name=name)
    if segment.name not in _OWNED_SEGMENTS:
        # Foreign-process attach (fresh resource tracker): drop the
        # tracker registration.  But a *forked child* attaching to its
        # parent's segment shares the parent's tracker daemon — the
        # registration it would drop is the creator's, so there the
        # attach must leave tracker state alone (the inherited
        # ``_OWNED_SEGMENTS`` entry is how we tell the cases apart).
        try:
            from multiprocessing import resource_tracker
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            # Python >= 3.13 (track= keyword) or exotic platforms: the
            # attach either was not tracked or cannot be untracked; the
            # creator-side unlink still guarantees cleanup.
            pass
    return segment


def release_segment(segment, unlink: Optional[bool] = None) -> None:
    """Close a mapping; unlink it too if this process owns it.

    Safe to call twice and safe on segments another process already
    unlinked (a crashed peer, a chaos kill): every error that only
    means "already gone" is swallowed.
    """
    entry = _OWNED_SEGMENTS.pop(segment.name, None)
    # A forked child inherits the owner dict; only the creating process
    # itself may unlink (the parent still has the block mapped).
    owned = entry is not None and entry[1] == os.getpid()
    if unlink is None:
        unlink = owned
    try:
        segment.close()
    except (OSError, BufferError):
        pass
    if unlink:
        try:
            segment.unlink()
        except (FileNotFoundError, OSError):
            pass


def owned_segment_names():
    """Names of segments this process currently owns (for tests)."""
    return sorted(_OWNED_SEGMENTS)


class SharedMemoryChannel(Channel):
    """Writer-shared ring buffer with no append-only enforcement."""

    primitive = "shm"
    append_only = False
    async_validation = True
    primary_cost = "Mem. Write"

    def __init__(self, capacity: int = 1 << 16) -> None:
        super().__init__(capacity)
        self._ring = array("Q")
        self._send_cost = send_cycles(self.primitive)
        self._capacity_words = capacity * MESSAGE_WORDS

    def send_raw(self, sender: Process, op: int, arg0: int = 0,
                 arg1: int = 0, aux: int = 0) -> None:
        if len(self._ring) >= self._capacity_words:
            # Spin until the verifier drains the ring (drain hook), then
            # re-check; a still-full ring fails the send.
            self._notify_full()
        # Draining swaps the ring out, so re-read it after the hook.
        ring = self._ring
        if len(ring) >= self._capacity_words:
            raise ChannelFullError("shared-memory ring full")
        sender.cycles.charge_ipc(self._send_cost)
        counter = self._counter + 1
        self._counter = counter
        ring.append((op & _MASK32) | ((sender.pid & _MASK32) << 32))
        ring.append(arg0 & _MASK64)
        ring.append(arg1 & _MASK64)
        ring.append((aux & _MASK32) | ((counter & _MASK32) << 32))
        self.sent_total += 1

    def _receive_raw_words(self) -> array:
        words = self._ring
        self._ring = array("Q")
        return words

    def pending(self) -> int:
        return len(self._ring) // MESSAGE_WORDS

    # -- the attack surface --------------------------------------------------

    def corrupt(self, index: int, message: Message) -> None:
        """Overwrite a pending message in place, preserving its counter.

        Because the writer owns the mapping, the replacement is
        indistinguishable from a legitimate message: the counter value is
        reused, so the verifier sees no gap.
        """
        ring = self._ring
        base = index * MESSAGE_WORDS
        if index < 0:
            base += len(ring)
        if base < 0 or base + MESSAGE_WORDS > len(ring):
            raise IndexError("message index out of range")
        pid = ring[base] >> 32
        counter = ring[base + 3] >> 32
        ring[base] = (int(message.op) & _MASK32) | (pid << 32)
        ring[base + 1] = message.arg0 & _MASK64
        ring[base + 2] = message.arg1 & _MASK64
        ring[base + 3] = (message.aux & _MASK32) | (counter << 32)

    def erase(self, count: Optional[int] = None) -> None:
        """Erase the most recent ``count`` pending messages (all if None).

        Models a compromised writer rewinding the ring's head index; the
        verifier simply never observes the erased messages.  Counters are
        rewound too, so no gap is detectable.
        """
        pending = len(self._ring) // MESSAGE_WORDS
        if count is None:
            count = pending
        if count < 0 or count > pending:
            raise ValueError("erase count out of range")
        if count:
            del self._ring[-count * MESSAGE_WORDS:]
            self._counter -= count
