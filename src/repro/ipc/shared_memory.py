"""Raw shared-memory ring buffer: fast but lacks message integrity.

A plain shared mapping costs only a memory write per send (12 ns, Table
2) and keeps validation off the critical path — but the writer retains
write access to the whole ring, so a compromised program can corrupt or
erase previously-written messages before the verifier reads them
(section 2.3: "fast IPC primitives, like shared memory, lack semantic
access control").  :meth:`corrupt` and :meth:`erase` expose exactly
that attack surface; ``tests/test_ipc_security.py`` demonstrates the
resulting evidence destruction, which AppendWrite is designed to
prevent.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.messages import Message
from repro.ipc.base import Channel, ChannelFullError
from repro.ipc.latency import send_cycles
from repro.sim.process import Process


class SharedMemoryChannel(Channel):
    """Writer-shared ring buffer with no append-only enforcement."""

    primitive = "shm"
    append_only = False
    async_validation = True
    primary_cost = "Mem. Write"

    def __init__(self, capacity: int = 1 << 16) -> None:
        super().__init__(capacity)
        self._ring: List[Message] = []

    def send(self, sender: Process, message: Message) -> None:
        if len(self._ring) >= self.capacity:
            # Spin until the verifier drains the ring (drain hook), then
            # re-check; a still-full ring fails the send.
            self._notify_full()
        if len(self._ring) >= self.capacity:
            raise ChannelFullError("shared-memory ring full")
        sender.cycles.charge_ipc(send_cycles(self.primitive))
        self._ring.append(message.with_transport(sender.pid, self._next_counter()))
        self.sent_total += 1

    def _receive_raw(self) -> List[Message]:
        messages = list(self._ring)
        self._ring.clear()
        return messages

    def pending(self) -> int:
        return len(self._ring)

    # -- the attack surface --------------------------------------------------

    def corrupt(self, index: int, message: Message) -> None:
        """Overwrite a pending message in place, preserving its counter.

        Because the writer owns the mapping, the replacement is
        indistinguishable from a legitimate message: the counter value is
        reused, so the verifier sees no gap.
        """
        original = self._ring[index]
        self._ring[index] = message.with_transport(original.pid, original.counter)

    def erase(self, count: Optional[int] = None) -> None:
        """Erase the most recent ``count`` pending messages (all if None).

        Models a compromised writer rewinding the ring's head index; the
        verifier simply never observes the erased messages.  Counters are
        rewound too, so no gap is detectable.
        """
        if count is None:
            count = len(self._ring)
        if count < 0 or count > len(self._ring):
            raise ValueError("erase count out of range")
        for _ in range(count):
            self._ring.pop()
            self._counter -= 1
