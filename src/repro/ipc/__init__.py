"""IPC primitives: AppendWrite and the Table 2 comparison set."""

from repro.ipc.appendwrite import (
    AppendWriteFPGA,
    AppendWriteModel,
    AppendWriteUArch,
)
from repro.ipc.base import Channel, ChannelIntegrityError
from repro.ipc.registry import available_primitives, create_channel

__all__ = ["AppendWriteFPGA", "AppendWriteModel", "AppendWriteUArch",
           "Channel", "ChannelIntegrityError", "available_primitives",
           "create_channel"]
