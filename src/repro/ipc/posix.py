"""Software IPC primitives requiring a system call per send.

POSIX message queues, named pipes, and Unix-domain sockets are
kernel-mediated: the kernel copies each message out of the sender
immediately, so sent messages are append-only (the sender cannot reach
back into kernel buffers), but every send pays a privilege transition on
the critical path — hundreds of nanoseconds per message (paper Table 2),
which is what makes HQ-CFI-SfeStk-MQ reach only 39% relative
performance in Figure 3.
"""

from __future__ import annotations

from array import array

from repro.core.messages import MESSAGE_WORDS, _MASK32, _MASK64
from repro.ipc.base import Channel, ChannelFullError
from repro.ipc.latency import send_cycles
from repro.sim.cycles import ns_to_cycles
from repro.sim.process import Process


class SyscallChannel(Channel):
    """Common behaviour for syscall-based primitives.

    The kernel stamps the caller's pid (message authenticity) and copies
    the message synchronously; sends block the sender for the full
    primitive cost, so validation work is *not* asynchronous even though
    the verifier reads later.
    """

    async_validation = False
    primary_cost = "System Call"

    #: Indirect cost of the privilege transition beyond the measured
    #: send latency: kernel page-table isolation flushes TLB/cache state
    #: on every transition (section 2.3 cites KPTI [52, 69]), and the
    #: surrounding user code pays the refills.  Charged per send.
    KPTI_REFILL_NS = 155.0

    def __init__(self, capacity: int = 1 << 16) -> None:
        super().__init__(capacity)
        self._queue = array("Q")
        self._send_cost = send_cycles(self.primitive)
        self._kpti_cost = ns_to_cycles(self.KPTI_REFILL_NS)
        self._capacity_words = capacity * MESSAGE_WORDS

    def send_raw(self, sender: Process, op: int, arg0: int = 0,
                 arg1: int = 0, aux: int = 0) -> None:
        if len(self._queue) >= self._capacity_words:
            # Let the kernel-side drain hook empty the queue before
            # failing: the syscall blocks briefly while the verifier
            # catches up, mirroring mq_send's bounded wait.
            self._notify_full()
        # Draining swaps the queue out, so re-read it after the hook.
        queue = self._queue
        if len(queue) >= self._capacity_words:
            raise ChannelFullError(f"{type(self).__name__} queue full")
        # The syscall cost is charged as syscall time: a privilege
        # transition executes in the kernel, on the critical path.
        cycles = sender.cycles
        cycles.charge_syscall(self._send_cost)
        cycles.charge_user(self._kpti_cost, category="kpti-refill")
        counter = self._counter + 1
        self._counter = counter
        queue.append((op & _MASK32) | ((sender.pid & _MASK32) << 32))
        queue.append(arg0 & _MASK64)
        queue.append(arg1 & _MASK64)
        queue.append((aux & _MASK32) | ((counter & _MASK32) << 32))
        self.sent_total += 1

    def _receive_raw_words(self) -> array:
        words = self._queue
        self._queue = array("Q")
        return words

    def pending(self) -> int:
        return len(self._queue) // MESSAGE_WORDS


class MessageQueueChannel(SyscallChannel):
    """POSIX message queue (``mq_send``): 146 ns per send."""

    primitive = "mq"


class NamedPipeChannel(SyscallChannel):
    """Named pipe (FIFO ``write``): 316 ns per send."""

    primitive = "pipe"


class SocketChannel(SyscallChannel):
    """Unix-domain socket (``send``): 346 ns per send."""

    primitive = "socket"
