"""Software IPC primitives requiring a system call per send.

POSIX message queues, named pipes, and Unix-domain sockets are
kernel-mediated: the kernel copies each message out of the sender
immediately, so sent messages are append-only (the sender cannot reach
back into kernel buffers), but every send pays a privilege transition on
the critical path — hundreds of nanoseconds per message (paper Table 2),
which is what makes HQ-CFI-SfeStk-MQ reach only 39% relative
performance in Figure 3.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.core.messages import Message
from repro.ipc.base import Channel, ChannelFullError
from repro.ipc.latency import send_cycles
from repro.sim.process import Process


class SyscallChannel(Channel):
    """Common behaviour for syscall-based primitives.

    The kernel stamps the caller's pid (message authenticity) and copies
    the message synchronously; sends block the sender for the full
    primitive cost, so validation work is *not* asynchronous even though
    the verifier reads later.
    """

    async_validation = False
    primary_cost = "System Call"

    #: Indirect cost of the privilege transition beyond the measured
    #: send latency: kernel page-table isolation flushes TLB/cache state
    #: on every transition (section 2.3 cites KPTI [52, 69]), and the
    #: surrounding user code pays the refills.  Charged per send.
    KPTI_REFILL_NS = 155.0

    def __init__(self, capacity: int = 1 << 16) -> None:
        super().__init__(capacity)
        self._queue: Deque[Message] = deque()

    def send(self, sender: Process, message: Message) -> None:
        if len(self._queue) >= self.capacity:
            # Let the kernel-side drain hook empty the queue before
            # failing: the syscall blocks briefly while the verifier
            # catches up, mirroring mq_send's bounded wait.
            self._notify_full()
        if len(self._queue) >= self.capacity:
            raise ChannelFullError(f"{type(self).__name__} queue full")
        # The syscall cost is charged as syscall time: a privilege
        # transition executes in the kernel, on the critical path.
        sender.cycles.charge_syscall(send_cycles(self.primitive))
        from repro.sim.cycles import ns_to_cycles
        sender.cycles.charge_user(ns_to_cycles(self.KPTI_REFILL_NS),
                                  category="kpti-refill")
        stamped = message.with_transport(sender.pid, self._next_counter())
        self._queue.append(stamped)
        self.sent_total += 1

    def _receive_raw(self) -> List[Message]:
        messages = list(self._queue)
        self._queue.clear()
        return messages

    def pending(self) -> int:
        return len(self._queue)


class MessageQueueChannel(SyscallChannel):
    """POSIX message queue (``mq_send``): 146 ns per send."""

    primitive = "mq"


class NamedPipeChannel(SyscallChannel):
    """Named pipe (FIFO ``write``): 316 ns per send."""

    primitive = "pipe"


class SocketChannel(SyscallChannel):
    """Unix-domain socket (``send``): 346 ns per send."""

    primitive = "socket"
