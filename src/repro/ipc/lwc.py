"""Light-weight contexts (LWC): disjoint-address-space messaging.

Litton et al.'s light-weight contexts [70] provide isolated snapshots
within one process; switching between them reconfigures the MMU and
costs ~2010 ns per switch — and message delivery needs a switch *to*
the verifier context and another one *back* (section 2.3: the cost
"would be on the critical path, and occur both to and from the verifier
on each sent message").  Messages handed over during a switch are
append-only (the sender context cannot touch verifier memory), but the
send is fully synchronous.
"""

from __future__ import annotations

from array import array

from repro.core.messages import MESSAGE_WORDS, _MASK32, _MASK64
from repro.ipc.base import Channel, ChannelFullError
from repro.ipc.latency import send_cycles
from repro.sim.process import Process


class LightWeightContextChannel(Channel):
    """One message per pair of LWC context switches."""

    primitive = "lwc"
    append_only = True
    async_validation = False
    primary_cost = "System Call"

    #: Switches per message: one into the verifier context, one back.
    SWITCHES_PER_SEND = 2

    def __init__(self, capacity: int = 1 << 16) -> None:
        super().__init__(capacity)
        self._queue = array("Q")
        self._send_cost = send_cycles(self.primitive) * self.SWITCHES_PER_SEND
        self._capacity_words = capacity * MESSAGE_WORDS

    def send_raw(self, sender: Process, op: int, arg0: int = 0,
                 arg1: int = 0, aux: int = 0) -> None:
        if len(self._queue) >= self._capacity_words:
            # A full mailbox switches to the verifier context so it can
            # drain before the send is retried.
            self._notify_full()
        # Draining swaps the queue out, so re-read it after the hook.
        queue = self._queue
        if len(queue) >= self._capacity_words:
            raise ChannelFullError("LWC mailbox full")
        sender.cycles.charge_syscall(self._send_cost)
        counter = self._counter + 1
        self._counter = counter
        queue.append((op & _MASK32) | ((sender.pid & _MASK32) << 32))
        queue.append(arg0 & _MASK64)
        queue.append(arg1 & _MASK64)
        queue.append((aux & _MASK32) | ((counter & _MASK32) << 32))
        self.sent_total += 1

    def _receive_raw_words(self) -> array:
        words = self._queue
        self._queue = array("Q")
        return words

    def pending(self) -> int:
        return len(self._queue) // MESSAGE_WORDS
