"""Light-weight contexts (LWC): disjoint-address-space messaging.

Litton et al.'s light-weight contexts [70] provide isolated snapshots
within one process; switching between them reconfigures the MMU and
costs ~2010 ns per switch — and message delivery needs a switch *to*
the verifier context and another one *back* (section 2.3: the cost
"would be on the critical path, and occur both to and from the verifier
on each sent message").  Messages handed over during a switch are
append-only (the sender context cannot touch verifier memory), but the
send is fully synchronous.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.core.messages import Message
from repro.ipc.base import Channel, ChannelFullError
from repro.ipc.latency import send_cycles
from repro.sim.process import Process


class LightWeightContextChannel(Channel):
    """One message per pair of LWC context switches."""

    primitive = "lwc"
    append_only = True
    async_validation = False
    primary_cost = "System Call"

    #: Switches per message: one into the verifier context, one back.
    SWITCHES_PER_SEND = 2

    def __init__(self, capacity: int = 1 << 16) -> None:
        super().__init__(capacity)
        self._queue: Deque[Message] = deque()

    def send(self, sender: Process, message: Message) -> None:
        if len(self._queue) >= self.capacity:
            # A full mailbox switches to the verifier context so it can
            # drain before the send is retried.
            self._notify_full()
        if len(self._queue) >= self.capacity:
            raise ChannelFullError("LWC mailbox full")
        cost = send_cycles(self.primitive) * self.SWITCHES_PER_SEND
        sender.cycles.charge_syscall(cost)
        self._queue.append(message.with_transport(sender.pid, self._next_counter()))
        self.sent_total += 1

    def _receive_raw(self) -> List[Message]:
        messages = list(self._queue)
        self._queue.clear()
        return messages

    def pending(self) -> int:
        return len(self._queue)
