"""Registry of IPC primitives by the paper's configuration postfixes.

The evaluation names configurations by primitive: ``-MQ`` for POSIX
message queues, ``-FPGA`` for the accelerator, ``-SIM`` for the
hardware simulation of AppendWrite-uarch, and ``-MODEL`` for its
software model (section 5).  This registry maps those names (plus the
remaining Table 2 primitives) to channel factories.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.ipc.appendwrite import AppendWriteFPGA, AppendWriteModel, AppendWriteUArch
from repro.ipc.base import Channel
from repro.ipc.lwc import LightWeightContextChannel
from repro.ipc.posix import MessageQueueChannel, NamedPipeChannel, SocketChannel
from repro.ipc.shared_memory import SharedMemoryChannel
from repro.ipc.spsc_ring import SpscRingChannel

_FACTORIES: Dict[str, Callable[..., Channel]] = {
    "mq": MessageQueueChannel,
    "pipe": NamedPipeChannel,
    "socket": SocketChannel,
    "shm": SharedMemoryChannel,
    "lwc": LightWeightContextChannel,
    "fpga": AppendWriteFPGA,
    "sim": AppendWriteUArch,
    "uarch": AppendWriteUArch,
    "model": AppendWriteModel,
    "spsc": SpscRingChannel,
}


def available_primitives() -> List[str]:
    """Names accepted by :func:`create_channel`."""
    return sorted(_FACTORIES)


def create_channel(primitive: str, **kwargs) -> Channel:
    """Instantiate the channel for ``primitive`` (case-insensitive)."""
    key = primitive.lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown IPC primitive {primitive!r}; "
            f"choose from {available_primitives()}"
        )
    return _FACTORIES[key](**kwargs)
