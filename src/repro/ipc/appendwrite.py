"""The AppendWrite IPC primitive (paper sections 2.3 and 3.1).

AppendWrite guarantees message *authenticity* (every message carries a
kernel/hardware-stamped pid) and *integrity* (messages are append-only:
once sent they cannot be modified or erased by the sender).  Three
implementations are modelled:

* :class:`AppendWriteFPGA` — the Intel PAC accelerator (section 3.1.1):
  messages are assembled from word-granularity uncached MMIO writes,
  stamped with a kernel-managed PID register, given a consecutive
  per-message counter, and DMA'd into a pinned circular buffer in the
  verifier.  The AFU has no back-pressure, so a full buffer drops
  messages, detected by the verifier as a counter gap (an integrity
  violation that kills the monitored program).  Cost: 102 ns/send.

* :class:`AppendWriteUArch` — the ISA extension (section 2.3.2): two
  privileged per-core registers (*AppendAddr*, *MaxAppendAddr*) name an
  appendable memory region (AMR) whose pages the MMU protects from
  ordinary stores; the ``AppendWrite`` instruction copies a fixed-size
  message and auto-increments *AppendAddr*, faulting to the kernel when
  the region is exhausted.  Cost: < 2 ns/send (one store).

* :class:`AppendWriteModel` — the paper's software-only model of the
  ISA extension (section 5.3.1, the ``-MODEL`` configurations): it
  "fetches, checks, and increments an AppendAddr variable in shared
  memory, and waits for the verifier if the message buffer is full."
  It lacks hardware append-only enforcement (the paper notes it "should
  not actually be deployed") but gives a lower-bound performance
  estimate.

All three are *word-native*: sends write packed 64-bit words straight
into the ring/AMR in the ``repro.core.messages`` wire format and the
receive side hands the verifier the same flat stream — ``Message``
objects only exist at API boundaries (object-path callers, tests,
fault injection).
"""

from __future__ import annotations

from array import array
from typing import Callable, List, Optional

from repro.core.messages import (MESSAGE_BYTES, MESSAGE_WORDS, Message,
                                 _MASK32, _MASK64)
from repro.ipc.base import Channel, ChannelFullError, ChannelIntegrityError
from repro.ipc.latency import send_cycles
from repro.sim.cycles import ns_to_cycles
from repro.sim.memory import Memory, PROT_AMR, PROT_READ, WORD_SIZE, align_up
from repro.sim.process import Process


class _CounterChecked(Channel):
    """Shared receive-side logic: verify consecutive message counters.

    "The verifier checks that each message has a consecutive counter
    value; otherwise, the monitored program must be terminated due to
    violation of message integrity" (section 3.1.1).
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._expected_counter = 1

    def _check_counters(self, messages: List[Message]) -> List[Message]:
        for message in messages:
            if message.counter != self._expected_counter:
                raise ChannelIntegrityError(
                    f"counter gap: expected {self._expected_counter}, "
                    f"got {message.counter} (messages dropped or tampered)"
                )
            self._expected_counter += 1
        return messages

    def _validate(self, messages: List[Message]) -> List[Message]:
        return self._check_counters(messages)

    def _validate_words(self, words: array) -> array:
        """Batch counter check over a packed word stream.

        The transports in this family append strictly consecutive
        counters, so a whole healthy batch is provable with one range
        comparison: first counter is the expected one and the last is
        ``expected + n - 1``.  Anything else falls back to the
        per-message walk, which pinpoints the gap with the same error
        the object path raises.
        """
        n_words = len(words)
        if not n_words:
            return words
        if n_words % MESSAGE_WORDS:
            raise ChannelIntegrityError(
                f"undecodable message stream: truncated message stream: "
                f"{n_words} words is not a multiple of {MESSAGE_WORDS}")
        count = n_words // MESSAGE_WORDS
        expected = self._expected_counter
        if (words[3] >> 32 == expected
                and words[n_words - 1] >> 32 == expected + count - 1):
            self._expected_counter = expected + count
            return words
        if self.observer is not None:
            self.observer.ipc_counter_fallback()
        for i in range(3, n_words, MESSAGE_WORDS):
            counter = words[i] >> 32
            if counter != self._expected_counter:
                raise ChannelIntegrityError(
                    f"counter gap: expected {self._expected_counter}, "
                    f"got {counter} (messages dropped or tampered)"
                )
            self._expected_counter += 1
        return words

    def resync(self) -> List[Message]:
        """Discard in-flight messages and realign the counter check.

        After a verifier restart the receive cursor is gone; aligning
        the expected counter with the send counter means the next
        legitimately-sent message validates cleanly while everything
        dropped on the floor is reported to the caller.
        """
        dropped = super().resync()
        self._expected_counter = self._counter + 1
        return dropped


class AppendWriteFPGA(_CounterChecked):
    """FPGA accelerator implementation of AppendWrite.

    ``capacity`` is the circular buffer size in messages; the paper uses
    1 GB so drops never occur in practice, and the default here is
    similarly generous.  Shrinking it (see the ablation benchmarks)
    demonstrates drop detection.
    """

    primitive = "fpga"
    append_only = True
    async_validation = True
    primary_cost = "Mem. Write"

    #: MMIO writes needed per message: operation-specific registers let
    #: most messages be created with at most two writes (section 3.1.1).
    MMIO_WRITES_PER_MESSAGE = 2

    def __init__(self, capacity: int = 1 << 20,
                 on_full: Optional[Callable[["AppendWriteFPGA"], None]] = None) -> None:
        super().__init__(capacity)
        self._ring = array("Q")
        self._on_full = on_full
        self._send_cost = send_cycles(self.primitive)
        self._capacity_words = capacity * MESSAGE_WORDS
        #: Kernel-managed PID register, updated on context switch; this
        #: is what makes the pid stamp unforgeable by the sender.
        self.pid_register: Optional[int] = None

    def context_switch(self, pid: int) -> None:
        """Kernel hook: update the AFU PID register on a context switch."""
        self.pid_register = pid

    def send_raw(self, sender: Process, op: int, arg0: int = 0,
                 arg1: int = 0, aux: int = 0) -> None:
        if self.pid_register is None:
            # The kernel switched this process in before it ran.
            self.pid_register = sender.pid
        sender.cycles.charge_ipc(self._send_cost)
        counter = self._counter + 1
        self._counter = counter
        self.sent_total += 1
        if len(self._ring) >= self._capacity_words:
            # The AFU has no back-pressure: the in-flight message is
            # already lost by the time the ring-full interrupt fires,
            # leaving a counter gap that the verifier will observe (an
            # integrity violation that kills the monitored program —
            # fail closed).  The interrupt still lets the kernel driver
            # drain the verifier so *subsequent* sends find room.
            self.dropped_total += 1
            if self.observer is not None:
                self.observer.ipc_drop()
            self._notify_full()
            return
        ring = self._ring
        # The AFU, not the sender, stamps pid: a compromised program that
        # claims another pid in its message payload is overridden here.
        ring.append((op & _MASK32) | ((self.pid_register & _MASK32) << 32))
        ring.append(arg0 & _MASK64)
        ring.append(arg1 & _MASK64)
        ring.append((aux & _MASK32) | ((counter & _MASK32) << 32))

    def _receive_raw_words(self) -> array:
        words = self._ring
        self._ring = array("Q")
        return words

    def pending(self) -> int:
        return len(self._ring) // MESSAGE_WORDS


class AMRFullFault(Exception):
    """AppendWrite would exceed MaxAppendAddr: fault to the kernel.

    The kernel "can allocate a new buffer or reset address registers, if
    the AMR has been fully read" (section 2.3.2).  The fault is always
    recoverable in this model — :meth:`AppendWriteUArch.send` falls back
    to the drain-and-reset recovery when the configured handler does not
    make room — so this exception is part of the public surface for
    tests and tooling but no longer propagates out of the send path.
    """


class AppendWriteUArch(_CounterChecked):
    """Microarchitectural AppendWrite over a real simulated AMR.

    The AMR is a run of pages mapped ``PROT_READ | PROT_AMR`` inside
    ``memory`` (the verifier's address space, or a standalone region):
    readable by the verifier, writable *only* through the AppendWrite
    datapath — ordinary stores fault, which ``tests/test_appendwrite.py``
    verifies.  ``on_full`` is the kernel's AMR-exhaustion handler; the
    default drains unread messages into the receive path and resets
    *AppendAddr*, exactly the recovery section 2.3.2 describes.
    """

    primitive = "uarch"
    append_only = True
    async_validation = True
    primary_cost = "Mem. Write"

    #: Cost of one AMR-exhaustion fault: trap to the kernel, drain the
    #: region into the verifier, reset the address registers, return.
    #: Charged as wait time on the sender (the faulting instruction
    #: stalls until the kernel resumes it).
    AMR_FAULT_NS = 300.0

    def __init__(self, capacity: int = 1 << 16,
                 memory: Optional[Memory] = None,
                 base: int = 0x4000_0000,
                 on_full: Optional[Callable[["AppendWriteUArch"], None]] = None) -> None:
        super().__init__(capacity)
        self.memory = memory if memory is not None else Memory()
        size = align_up(capacity * MESSAGE_BYTES)
        self.memory.map_region(base, size, PROT_READ | PROT_AMR, "amr")
        self.base = base
        #: Per-send cycle cost, fixed for the primitive — hoisted out of
        #: the send path.
        self._send_cost = send_cycles(self.primitive)
        #: The datapath validated the whole AMR span at this protection
        #: epoch; while it is current, stores skip the per-page checks.
        self._amr_epoch = self.memory.prot_epoch
        #: Privileged per-core registers (section 2.3.2).
        self.append_addr = base
        self.max_append_addr = base + capacity * MESSAGE_BYTES
        #: Verifier's read cursor.
        self.read_addr = base
        self._on_full = on_full
        self._staged = array("Q")
        self.faults = 0
        #: Faults the configured handler failed to resolve, recovered by
        #: the fallback drain-and-reset path instead of raising.
        self.fallback_recoveries = 0

    def send_raw(self, sender: Process, op: int, arg0: int = 0,
                 arg1: int = 0, aux: int = 0) -> None:
        # charge_ipc inlined (it is a bare ``ipc += cycles``): one send
        # is a single simulated store, so the accounting call would be
        # a third of the datapath's cost.
        sender.cycles.ipc += self._send_cost
        if self.append_addr + MESSAGE_BYTES > self.max_append_addr:
            # AMR-exhaustion fault: the kernel handles it while the
            # faulting AppendWrite stalls — cycle-accounted, never
            # surfaced to the program (section 2.3.2).
            self.faults += 1
            if self.observer is not None:
                self.observer.ipc_amr_fault()
            sender.cycles.charge_wait(ns_to_cycles(self.AMR_FAULT_NS))
            if self._on_full is not None:
                self._on_full(self)
            if self.append_addr + MESSAGE_BYTES > self.max_append_addr:
                # Handler absent or did not make room: apply the
                # section 2.3.2 recovery directly (stage unread
                # messages, rewind AppendAddr) rather than letting an
                # AMRFullFault escape through the interpreter.
                self._drain_to_staging()
                self.reset_registers()
                if self._on_full is not None:
                    self.fallback_recoveries += 1
        counter = self._counter + 1
        self._counter = counter
        memory = self.memory
        address = self.append_addr
        if memory.prot_epoch == self._amr_epoch:
            # The AppendWrite datapath store, page checks pre-validated
            # for the whole span at the current protection epoch.
            words = memory._words
            words[address] = (op & _MASK32) | ((sender.pid & _MASK32) << 32)
            words[address + 8] = arg0 & _MASK64
            words[address + 16] = arg1 & _MASK64
            words[address + 24] = (aux & _MASK32) | ((counter & _MASK32) << 32)
        elif memory.span_is_amr(self.base, self.max_append_addr):
            # Protections changed but the whole span is still AMR:
            # revalidate once and retake the fast path.
            if self.observer is not None:
                self.observer.ipc_amr_revalidations.value += 1
            self._amr_epoch = memory.prot_epoch
            words = memory._words
            words[address] = (op & _MASK32) | ((sender.pid & _MASK32) << 32)
            words[address + 8] = arg0 & _MASK64
            words[address + 16] = arg1 & _MASK64
            words[address + 24] = (aux & _MASK32) | ((counter & _MASK32) << 32)
        else:
            # The span is no longer wholly AMR: take the per-page-checked
            # store for exact fault semantics (stores onto a still-AMR
            # prefix succeed, others fault).
            memory.append_store_words(address, (
                (op & _MASK32) | ((sender.pid & _MASK32) << 32),
                arg0 & _MASK64,
                arg1 & _MASK64,
                (aux & _MASK32) | ((counter & _MASK32) << 32),
            ))
        self.append_addr = address + MESSAGE_BYTES
        self.sent_total += 1

    def _drain_to_staging(self) -> None:
        """Kernel-side: move unread AMR contents aside before a reset."""
        self._staged.extend(self._read_amr_words())

    def reset_registers(self) -> None:
        """Kernel-side: rewind AppendAddr once the AMR has been read."""
        self.append_addr = self.base
        self.read_addr = self.base

    def _read_amr_words(self) -> array:
        """Verifier-side bulk AMR read: one ranged load, not a word loop."""
        n_words = (self.append_addr - self.read_addr) // WORD_SIZE
        words = self.memory.load_words(self.read_addr, n_words)
        self.read_addr = self.append_addr
        return words

    def _receive_raw_words(self) -> array:
        if self._staged:
            words = self._staged
            self._staged = array("Q")
            words.extend(self._read_amr_words())
            return words
        return self._read_amr_words()

    def pending(self) -> int:
        return (len(self._staged) // MESSAGE_WORDS
                + (self.append_addr - self.read_addr) // MESSAGE_BYTES)


class AppendWriteModel(_CounterChecked):
    """Software-only model of AppendWrite-uarch (the ``-MODEL`` runs).

    Per-send cost models the shared-memory fetch/check/increment of an
    AppendAddr variable plus the message copy.  When the buffer fills,
    the sender *waits* for the verifier to drain it (charged as stall
    cycles, which only the MODEL accounting counts — see
    :class:`repro.sim.cycles.AccountingMode`).  There is no hardware
    append-only enforcement; deployment would be unsafe, but as a
    performance model it lower-bounds the real hardware.
    """

    primitive = "model"
    append_only = False  # software-only: no hardware enforcement
    async_validation = True
    primary_cost = "Mem. Write"

    #: Stall charged when a send finds the buffer full and must wait for
    #: the verifier to catch up (one drain round trip).
    FULL_WAIT_NS = 2000.0

    def __init__(self, capacity: int = 1 << 16,
                 on_full: Optional[Callable[["AppendWriteModel"], None]] = None) -> None:
        super().__init__(capacity)
        self._ring = array("Q")
        self._on_full = on_full
        self._send_cost = send_cycles(self.primitive)
        self._capacity_words = capacity * MESSAGE_WORDS
        self.full_waits = 0

    def send_raw(self, sender: Process, op: int, arg0: int = 0,
                 arg1: int = 0, aux: int = 0) -> None:
        sender.cycles.charge_ipc(self._send_cost)
        if len(self._ring) >= self._capacity_words:
            self.full_waits += 1
            sender.cycles.charge_wait(ns_to_cycles(self.FULL_WAIT_NS))
            self._notify_full()
            if len(self._ring) >= self._capacity_words:
                raise ChannelFullError("model buffer full and verifier absent")
        ring = self._ring
        counter = self._counter + 1
        self._counter = counter
        ring.append((op & _MASK32) | ((sender.pid & _MASK32) << 32))
        ring.append(arg0 & _MASK64)
        ring.append(arg1 & _MASK64)
        ring.append((aux & _MASK32) | ((counter & _MASK32) << 32))
        self.sent_total += 1

    def _receive_raw_words(self) -> array:
        words = self._ring
        self._ring = array("Q")
        return words

    def pending(self) -> int:
        return len(self._ring) // MESSAGE_WORDS