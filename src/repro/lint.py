"""Lint CLI: audit instrumented modules for CFI completeness.

Builds every module of the lint corpus — the synthetic SPEC/NGINX
benchmark generator plus the example programs — runs the selected HQ
instrumentation pipeline over each, and then subjects the result to

* the deep SSA/CFG validator (:mod:`repro.compiler.validate`, in
  collect-all mode), and
* the CFI instrumentation auditor (:mod:`repro.compiler.lint`).

Usage::

    python -m repro.lint                    # text report over the corpus
    python -m repro.lint --strict           # exit 1 on error findings
    python -m repro.lint --json             # machine-readable report
    python -m repro.lint --profile 403.gcc --profile nginx
    python -m repro.lint --disable-pass syscall-sync   # mutation check

``--disable-pass`` removes one pass from the pipeline by name; the
auditor then reports exactly the findings that pass was responsible
for preventing — a cheap end-to-end mutation test of the audit rules.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.cfi.designs import get_design
from repro.compiler import ir
from repro.compiler.diagnostics import (
    Diagnostic,
    ERROR,
    render_text,
    sort_diagnostics,
    summarize,
)
from repro.compiler.lint import AuditResult, audit_module
from repro.compiler.passes.base import PassManager
from repro.compiler.validate import validate_module
from repro.workloads.generator import build_module
from repro.workloads.profiles import PROFILES, get_profile

#: Designs whose pipelines emit the messages the auditor understands.
HQ_DESIGNS = ("hq-sfestk", "hq-retptr")

#: Builder attribute names probed on example scripts.
_EXAMPLE_BUILDERS = ("build_program", "build_module")


def iter_example_builders(examples_dir: Path) -> Iterator[
        Tuple[str, Callable[[], ir.Module]]]:
    """Zero-argument module builders exposed by ``examples/*.py``."""
    if not examples_dir.is_dir():
        return
    for path in sorted(examples_dir.glob("*.py")):
        spec = importlib.util.spec_from_file_location(
            f"_lint_example_{path.stem}", path)
        if spec is None or spec.loader is None:
            continue
        module = importlib.util.module_from_spec(spec)
        try:
            spec.loader.exec_module(module)
        except Exception as error:  # pragma: no cover - corpus hygiene
            print(f"lint: skipping example {path.name}: {error}",
                  file=sys.stderr)
            continue
        for attr in _EXAMPLE_BUILDERS:
            builder = getattr(module, attr, None)
            if callable(builder):
                yield f"examples/{path.stem}", builder
                break


def iter_corpus(profiles: Optional[List[str]], dataset: str,
                examples_dir: Optional[Path]) -> Iterator[
        Tuple[str, Callable[[], ir.Module]]]:
    """(name, builder) pairs for every module the lint run covers."""
    if examples_dir is not None:
        yield from iter_example_builders(examples_dir)
    if profiles is None:
        selected = PROFILES
    else:
        selected = [get_profile(name) for name in profiles]
    for profile in selected:
        yield (profile.name,
               lambda profile=profile: build_module(profile, dataset))


def build_pipeline(design: str, disabled: List[str]) -> PassManager:
    passes = get_design(design).passes()
    if disabled:
        unknown = set(disabled) - {p.name for p in passes}
        if unknown:
            raise SystemExit(
                f"lint: --disable-pass {sorted(unknown)} not in the "
                f"{design} pipeline ({[p.name for p in passes]})")
        passes = [p for p in passes if p.name not in disabled]
    return PassManager(passes)


def lint_one(name: str, builder: Callable[[], ir.Module], design: str,
             disabled: List[str]) -> AuditResult:
    """Build, instrument, validate, and audit one corpus module."""
    module = builder()
    build_pipeline(design, disabled).run(module)
    result = audit_module(module)
    result.module = name
    for error in validate_module(module, collect=True) or []:
        function = error.function
        instruction = error.instruction
        result.diagnostics.append(Diagnostic(
            severity=ERROR,
            rule="ssa-invalid",
            module=name,
            function=function.name if function is not None else None,
            block=(instruction.block.name
                   if instruction is not None and instruction.block
                   else None),
            instruction=(instruction.name if instruction is not None
                         else None),
            message=error.detail,
        ))
    result.diagnostics = sort_diagnostics(result.diagnostics)
    return result


def _coverage_line(coverage: Dict[str, Dict[str, int]]) -> str:
    icalls = coverage.get("indirect-calls", {})
    stores = coverage.get("fnptr-stores", {})
    syscalls = coverage.get("syscalls", {})
    guarded = (icalls.get("checked", 0) + icalls.get("forwarded", 0)
               + icalls.get("static", 0))
    return (f"icalls {guarded}/{icalls.get('total', 0)} guarded "
            f"(checked {icalls.get('checked', 0)}, "
            f"forwarded {icalls.get('forwarded', 0)}, "
            f"static {icalls.get('static', 0)}); "
            f"fnptr stores {stores.get('defined', 0)} defined + "
            f"{stores.get('elided-sound', 0)} soundly elided "
            f"of {stores.get('total', 0)}; "
            f"syscalls {syscalls.get('synced', 0)}/"
            f"{syscalls.get('total', 0)} synced")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Audit instrumented IR modules for CFI "
                    "instrumentation completeness.")
    parser.add_argument("--design", choices=HQ_DESIGNS, default="hq-retptr",
                        help="instrumentation pipeline to audit "
                             "(default: hq-retptr)")
    parser.add_argument("--profile", action="append", dest="profiles",
                        metavar="NAME",
                        help="audit only the named benchmark profile(s); "
                             "repeatable (default: the whole corpus)")
    parser.add_argument("--dataset", choices=("ref", "train"), default="ref",
                        help="workload dataset size (default: ref)")
    parser.add_argument("--examples-dir", default="examples", metavar="DIR",
                        help="directory scanned for example module "
                             "builders (default: examples)")
    parser.add_argument("--no-examples", action="store_true",
                        help="skip the examples/ corpus")
    parser.add_argument("--disable-pass", action="append", dest="disabled",
                        default=[], metavar="PASS",
                        help="drop a pass from the pipeline by name "
                             "(mutation testing of the audit rules)")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON report instead of text")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero if any error-severity "
                             "finding is reported")
    args = parser.parse_args(argv)

    examples_dir = None if args.no_examples else Path(args.examples_dir)
    results: List[AuditResult] = []
    for name, builder in iter_corpus(args.profiles, args.dataset,
                                     examples_dir):
        results.append(lint_one(name, builder, args.design, args.disabled))

    all_diagnostics = [d for result in results for d in result.diagnostics]
    counts = summarize(all_diagnostics)

    if args.json:
        import json
        payload = {
            "design": args.design,
            "disabled_passes": args.disabled,
            "modules": [
                {
                    "name": result.module,
                    "diagnostics": [d.to_dict() for d in result.diagnostics],
                    "coverage": result.coverage,
                }
                for result in results
            ],
            "summary": {
                "modules": len(results),
                **counts,
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for result in results:
            status = "FAIL" if result.errors() else "ok"
            print(f"{status:<5} {result.module}: "
                  f"{_coverage_line(result.coverage)}")
            if result.diagnostics:
                print(render_text(result.diagnostics))
        print(f"lint: {len(results)} modules, "
              f"{counts[ERROR]} errors, {counts['warning']} warnings "
              f"({args.design}"
              + (f", disabled: {','.join(args.disabled)}" if args.disabled
                 else "") + ")")

    if args.strict and counts[ERROR]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
