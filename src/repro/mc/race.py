"""Happens-before race detection over real SPSC ring executions.

The model checker proves the *abstract* protocol; this module checks
the *implementation as executed*.  :class:`RingProbe` plugs into
:meth:`repro.ipc.spsc_ring.SpscRing.attach_probe` (zero cost when
detached — the obs-layer pattern) and records every shared access a
ring endpoint performs:

* **sync accesses** — single 8-byte header-word loads and stores
  (``head``/``acked``/``tail``/``stop``), which are the protocol's
  release/acquire points;
* **data accesses** — payload-slot read/write ranges, the plain
  accesses whose ordering must follow from the sync accesses alone.

:class:`RaceDetector` replays a recorded trace through FastTrack-style
analysis (Flanagan & Freund): each actor carries a vector clock, each
sync store releases the actor's clock *keyed by the stored value*,
each sync load acquires the clock of the store that produced the value
it observed, and each payload slot carries shadow state (last-write
epoch + read clock) checked on every access.  Keying releases by value
works because the ring's positions are free-running and monotone —
every ``tail``/``head``/``acked`` value is stored at most once — and
it is what lets traces from *different processes* be merged: each
side's probe log is internally ordered, and cross-log ordering is
recovered by matching each acquire to the release whose value it saw
(:meth:`RaceDetector.feed_logs`).

A flagged race means two actors touched a payload slot with no
happens-before path between them — on real hardware, a consumer that
can observe a torn message.  The clean implementation must stay
silent under every workload; the seeded racy variants in
:mod:`repro.mc.mutants` must be flagged.  Both are gated by
``python -m repro.mc``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Probe event kinds (compact tuples, picklable across a worker pipe):
#: ``("sl", actor, loc, value)``, ``("ss", actor, loc, value)``,
#: ``("dr", actor, lo, n)``, ``("dw", actor, lo, n)``.
SYNC_LOAD = "sl"
SYNC_STORE = "ss"
DATA_READ = "dr"
DATA_WRITE = "dw"

Event = Tuple[str, str, int, int]


class RingProbe:
    """Per-endpoint access recorder (the ``attach_probe`` payload).

    One probe per ring endpoint per process; its ``events`` list is a
    faithful program-order log of that endpoint's shared accesses and
    travels over a worker control pipe as plain tuples.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def sync_load(self, actor: str, loc: int, value: int) -> None:
        self.events.append((SYNC_LOAD, actor, loc, value))

    def sync_store(self, actor: str, loc: int, value: int) -> None:
        self.events.append((SYNC_STORE, actor, loc, value))

    def data_read(self, actor: str, lo: int, n: int) -> None:
        self.events.append((DATA_READ, actor, lo, n))

    def data_write(self, actor: str, lo: int, n: int) -> None:
        self.events.append((DATA_WRITE, actor, lo, n))


@dataclass
class Race:
    """One unsynchronized conflicting slot access."""

    slot: int
    kind: str          # "write-write" | "read-write" | "write-read"
    actor: str         # the actor whose access raised the flag
    other: str         # the prior access it conflicts with

    def __str__(self) -> str:
        return (f"{self.kind} race on payload slot {self.slot}: "
                f"{self.actor} conflicts with {self.other}")


@dataclass
class _Shadow:
    """FastTrack shadow cell for one payload slot."""

    write_actor: Optional[str] = None
    write_tick: int = 0
    reads: Dict[str, int] = field(default_factory=dict)


class TraceMergeError(Exception):
    """Per-actor logs could not be interleaved consistently.

    Raised when some actor's next acquire observes a value no release
    in any log ever stored — an infeasible (corrupted or truncated)
    trace, which the harness treats as its own failure, not a race.
    """


class RaceDetector:
    """Vector-clock happens-before checking over probe traces."""

    def __init__(self) -> None:
        self._clocks: Dict[str, Dict[str, int]] = {}
        #: Release clocks keyed by (loc, stored value).
        self._released: Dict[Tuple[int, int], Dict[str, int]] = {}
        self._shadow: Dict[int, _Shadow] = {}
        self.races: List[Race] = []
        self.events_processed = 0
        self._seen: set = set()

    # -- clock plumbing ------------------------------------------------------

    def _clock(self, actor: str) -> Dict[str, int]:
        clock = self._clocks.get(actor)
        if clock is None:
            clock = self._clocks[actor] = {actor: 1}
        return clock

    @staticmethod
    def _join(into: Dict[str, int], other: Dict[str, int]) -> None:
        for actor, tick in other.items():
            if into.get(actor, 0) < tick:
                into[actor] = tick

    def _flag(self, slot: int, kind: str, actor: str, other: str) -> None:
        key = (slot, kind, actor, other)
        if key not in self._seen:
            self._seen.add(key)
            self.races.append(Race(slot, kind, actor, other))

    # -- event semantics -----------------------------------------------------

    def _process(self, event: Event) -> None:
        self.events_processed += 1
        kind, actor, a, b = event
        clock = self._clock(actor)
        if kind == SYNC_STORE:
            # Release: snapshot this actor's knowledge under the stored
            # value, then advance its epoch.
            self._released[(a, b)] = dict(clock)
            clock[actor] += 1
        elif kind == SYNC_LOAD:
            released = self._released.get((a, b))
            if released is not None:
                self._join(clock, released)
        elif kind == DATA_WRITE:
            tick = clock[actor]
            for slot in range(a, a + b):
                shadow = self._shadow.setdefault(slot, _Shadow())
                if (shadow.write_actor is not None
                        and shadow.write_actor != actor
                        and clock.get(shadow.write_actor, 0)
                        < shadow.write_tick):
                    self._flag(slot, "write-write", actor,
                               shadow.write_actor)
                for reader, read_tick in shadow.reads.items():
                    if reader != actor and clock.get(reader, 0) < read_tick:
                        self._flag(slot, "read-write", actor, reader)
                shadow.write_actor = actor
                shadow.write_tick = tick
                shadow.reads.clear()
        elif kind == DATA_READ:
            tick = clock[actor]
            for slot in range(a, a + b):
                shadow = self._shadow.setdefault(slot, _Shadow())
                if (shadow.write_actor is not None
                        and shadow.write_actor != actor
                        and clock.get(shadow.write_actor, 0)
                        < shadow.write_tick):
                    self._flag(slot, "write-read", actor,
                               shadow.write_actor)
                shadow.reads[actor] = tick

    # -- trace input ---------------------------------------------------------

    def feed(self, events: Iterable[Event]) -> "RaceDetector":
        """Process an already-ordered trace (single-process probes)."""
        for event in events:
            self._process(event)
        return self

    def feed_logs(self, logs: Dict[str, List[Event]]) -> "RaceDetector":
        """Merge per-process program-order logs, then process.

        The interleaving is recovered by value matching: an acquire
        (sync load) is *enabled* once the release that stored the
        value it observed has been replayed (initial header values are
        zero and always enabled).  Data accesses and releases are
        always enabled.  Any enabled-order replay yields the same
        happens-before relation, so the scan order (sorted actor
        names, round-robin) only affects report ordering.
        """
        stored: Dict[int, set] = {}
        cursors = {name: 0 for name in sorted(logs)}
        remaining = sum(len(events) for events in logs.values())
        while remaining:
            progressed = False
            for name in sorted(cursors):
                events = logs[name]
                index = cursors[name]
                while index < len(events):
                    event = events[index]
                    kind, _, loc, value = event
                    if kind == SYNC_LOAD and value != 0 \
                            and value not in stored.get(loc, ()):
                        break
                    if kind == SYNC_STORE:
                        stored.setdefault(loc, set()).add(value)
                    self._process(event)
                    index += 1
                    remaining -= 1
                    progressed = True
                cursors[name] = index
            if not progressed:
                pending = {name: logs[name][cursors[name]]
                           for name in cursors
                           if cursors[name] < len(logs[name])}
                raise TraceMergeError(
                    f"unmergeable probe logs: every actor blocked on an "
                    f"unobserved release ({pending})")
        return self

    # -- reporting -----------------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.races

    def summary(self) -> Dict[str, object]:
        return {
            "events": self.events_processed,
            "actors": sorted(self._clocks),
            "races": [str(race) for race in self.races],
        }


def check_ring_events(events: Iterable[Event]) -> List[str]:
    """One-shot convenience: detect races in a single ordered trace."""
    return [str(race) for race in RaceDetector().feed(events).races]
