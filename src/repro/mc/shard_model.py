"""Shard-lifecycle model: scoped death + min-over-live ack epoch.

PR 6's security argument for the sharded runtime is two sentences
long: *a dead shard condemns only its own pids*, and *the barrier's
effective ack epoch is the minimum over live shards* (a laggard holds
everyone back, because the barrier cannot prove the laggard's pids
innocent).  This model explores every interleaving of shard ack
progress, at most one shard death, and kernel barrier sweeps, and
checks exactly those two properties plus their liveness halves:

* **scoped kill** — a killed pid's owning shard is dead, always;
* **epoch bound** — after every barrier, the epoch is ≤ every live
  shard's acked position, equals their minimum, and never regresses;
* **fail-closed completeness** — at every terminal state, a dead
  shard's pids have all been killed, and no live shard's pid ever was.

Mutations (:data:`MIS_SCOPED_KILL`, :data:`EPOCH_MAX`) break one
property each; the mutation gate proves the checker notices.

:func:`conformance_check` closes the model/implementation gap: it
drives a *real* :class:`~repro.core.shard_verifier.ShardedVerifier`
(real rings, real pid routing) through every single-death scenario and
asserts that ``shard_down_for`` / ``ack_epoch`` / the kernel barrier's
:func:`~repro.sim.kernel.shard_scoped_kill` decision agree with the
abstract model's verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.mc.explorer import Step

#: Shard-lifecycle mutant identifiers.
MIS_SCOPED_KILL = "misscoped-kill"
EPOCH_MAX = "epoch-max"

_SHARD_MUTATIONS = (MIS_SCOPED_KILL, EPOCH_MAX)


@dataclass(frozen=True)
class ShardState:
    """Acked positions, liveness, kill set, and the barrier's epoch."""

    acked: Tuple[int, ...]
    alive: Tuple[bool, ...]
    killed: Tuple[int, ...] = ()     # sorted killed pids
    epoch: int = 0
    deaths: int = 0

    def key(self):
        return (self.acked, self.alive, self.killed, self.epoch,
                self.deaths)


class ShardLifecycleModel:
    """Bounded exhaustive model of N shards under one death."""

    def __init__(self, num_shards: int = 2, pids_per_shard: int = 2,
                 ack_steps: int = 2, death_budget: int = 1,
                 mutation: Optional[str] = None) -> None:
        if num_shards < 2:
            raise ValueError("shard lifecycle needs at least two shards")
        if mutation is not None and mutation not in _SHARD_MUTATIONS:
            raise ValueError(f"unknown shard mutation {mutation!r}")
        self.num_shards = num_shards
        self.pids_per_shard = pids_per_shard
        self.ack_steps = ack_steps
        self.death_budget = death_budget
        self.mutation = mutation

    def describe(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "pids_per_shard": self.pids_per_shard,
            "ack_steps": self.ack_steps,
            "death_budget": self.death_budget,
            "mutation": self.mutation,
        }

    def owner(self, pid: int) -> int:
        return pid // self.pids_per_shard

    def pids_of(self, shard: int) -> List[int]:
        base = shard * self.pids_per_shard
        return list(range(base, base + self.pids_per_shard))

    # -- model interface -----------------------------------------------------

    def initial_state(self) -> ShardState:
        return ShardState(acked=(0,) * self.num_shards,
                          alive=(True,) * self.num_shards)

    def enabled(self, state: ShardState) -> List[Step]:
        steps: List[Step] = []
        for i in range(self.num_shards):
            if state.alive[i] and state.acked[i] < self.ack_steps:
                steps.append(Step(
                    f"ack@{i}", f"shard{i}",
                    frozenset(), frozenset({("acked", i)}),
                    lambda s, i=i: self._apply_ack(s, i)))
            if state.alive[i] and state.deaths < self.death_budget:
                steps.append(Step(
                    f"die@{i}", f"shard{i}",
                    frozenset(), frozenset({("alive", i), "death-budget"}),
                    lambda s, i=i: self._apply_die(s, i)))
        if self._barrier_would_act(state):
            every = frozenset(
                [("acked", i) for i in range(self.num_shards)]
                + [("alive", i) for i in range(self.num_shards)])
            steps.append(Step("barrier", "kernel", every,
                              frozenset({"epoch", "killed"}),
                              self._apply_barrier))
        return steps

    def _apply_ack(self, state: ShardState, i: int):
        acked = list(state.acked)
        acked[i] += 1
        return replace(state, acked=tuple(acked)), None

    def _apply_die(self, state: ShardState, i: int):
        alive = list(state.alive)
        alive[i] = False
        return replace(state, alive=tuple(alive),
                       deaths=state.deaths + 1), None

    # -- the kernel barrier --------------------------------------------------

    def _barrier_epoch(self, state: ShardState) -> int:
        live = [state.acked[i] for i in range(self.num_shards)
                if state.alive[i]]
        if not live:
            return state.epoch
        if self.mutation == EPOCH_MAX:
            return max(live)  # mutant: optimistic aggregation
        return min(live)

    def _barrier_kills(self, state: ShardState) -> List[int]:
        kills = [pid for i in range(self.num_shards) if not state.alive[i]
                 for pid in self.pids_of(i) if pid not in state.killed]
        if self.mutation == MIS_SCOPED_KILL and kills:
            # Mutant: the kill sweep leaks past the dead shard onto the
            # first live shard's first un-killed pid.
            for i in range(self.num_shards):
                if state.alive[i]:
                    for pid in self.pids_of(i):
                        if pid not in state.killed:
                            kills.append(pid)
                            break
                    break
        return kills

    def _barrier_would_act(self, state: ShardState) -> bool:
        return (self._barrier_epoch(state) != state.epoch
                or bool(self._barrier_kills(state)))

    def _apply_barrier(self, state: ShardState):
        epoch = self._barrier_epoch(state)
        kills = self._barrier_kills(state)
        child = replace(state, epoch=epoch,
                        killed=tuple(sorted(set(state.killed) | set(kills))))
        if epoch < state.epoch:
            return child, (f"ack epoch regressed: {state.epoch} -> {epoch}")
        for i in range(self.num_shards):
            if child.alive[i] and epoch > child.acked[i]:
                return child, (
                    f"ack epoch {epoch} ran ahead of live shard {i} "
                    f"(acked {child.acked[i]}): the barrier would prove "
                    f"unvalidated pids innocent")
        for pid in kills:
            if child.alive[self.owner(pid)]:
                return child, (
                    f"mis-scoped kill: pid {pid} killed while its shard "
                    f"{self.owner(pid)} is alive")
        return child, None

    def apply(self, state: ShardState, step: Step):
        return step.fn(state)

    def terminal_violation(self, state: ShardState) -> Optional[str]:
        live = [state.acked[i] for i in range(self.num_shards)
                if state.alive[i]]
        if live and state.epoch != min(live):
            return (f"terminal epoch {state.epoch} is not the minimum "
                    f"over live shards {live}")
        for i in range(self.num_shards):
            if not state.alive[i]:
                missing = [pid for pid in self.pids_of(i)
                           if pid not in state.killed]
                if missing:
                    return (f"fail-closed hole: shard {i} died but pids "
                            f"{missing} were never killed")
        for pid in state.killed:
            if state.alive[self.owner(pid)]:
                return (f"mis-scoped kill: pid {pid} dead, shard "
                        f"{self.owner(pid)} alive")
        return None


# ---------------------------------------------------------------------------
# Model ↔ implementation conformance
# ---------------------------------------------------------------------------

def conformance_check(num_shards: int = 3,
                      pids: int = 6) -> Dict[str, object]:
    """Drive a real :class:`ShardedVerifier` through every single-death
    scenario and compare its decisions with the abstract model's.

    For each choice of dead shard: register ``pids`` processes, give
    every shard a distinct acked position, crash the chosen shard, and
    check (a) ``shard_down_for`` is true exactly for the dead shard's
    pids, (b) the kernel's :func:`~repro.sim.kernel.shard_scoped_kill`
    decision matches it (they share the decision point by
    construction, so this pins the wiring), (c) ``ack_epoch`` equals
    the minimum over *live* shards' acked positions, and (d) every
    condemned pid — and no survivor — carries a ``shard-terminated``
    violation.

    Returns ``{"cases": n, "mismatches": [...]}``; an empty mismatch
    list is the pass condition.
    """
    from repro.core.shard_verifier import ShardedVerifier, resolve_policy
    from repro.sim.kernel import shard_scoped_kill

    mismatches: List[str] = []
    cases = 0
    for dead in range(num_shards):
        verifier = ShardedVerifier(resolve_policy("call-counter"),
                                   num_shards)
        try:
            pid_list = list(range(1000, 1000 + pids))
            for pid in pid_list:
                verifier.register_process(pid)
            owners = {pid: verifier.shard_of(pid) for pid in pid_list}
            # Distinct per-shard ack positions so min/max diverge.
            for engine in verifier.shards:
                engine.ring.ack(4 * (engine.shard_id + 1))
            verifier.crash_shard(dead)
            live_acked = [engine.ring.acked()
                          for engine in verifier.shards if engine.alive]
            expected_epoch = min(live_acked)
            if verifier.ack_epoch() != expected_epoch:
                mismatches.append(
                    f"dead={dead}: ack_epoch {verifier.ack_epoch()} != "
                    f"min over live {expected_epoch}")
            for pid in pid_list:
                cases += 1
                model_kill = owners[pid] == dead
                if verifier.shard_down_for(pid) != model_kill:
                    mismatches.append(
                        f"dead={dead} pid={pid}: shard_down_for "
                        f"{verifier.shard_down_for(pid)} != model "
                        f"{model_kill}")
                if shard_scoped_kill(verifier, pid) != model_kill:
                    mismatches.append(
                        f"dead={dead} pid={pid}: kernel decision "
                        f"disagrees with model {model_kill}")
                condemned = any(
                    v.kind == "shard-terminated"
                    for v in verifier.all_violations(pid))
                if condemned != model_kill:
                    mismatches.append(
                        f"dead={dead} pid={pid}: shard-terminated "
                        f"violation {condemned} != model {model_kill}")
        finally:
            verifier.close()
    return {"cases": cases, "mismatches": mismatches}
