"""Abstract operational model of the SPSC ring protocol.

This is :class:`repro.ipc.spsc_ring.SpscRing` re-expressed as a
small-step state machine whose atomic actions are exactly the shared
memory accesses the implementation performs — one header-word load or
store, or one payload-slot access, per step.  Everything the real code
does between shared accesses (free-space arithmetic, local index
bumps) is folded into the adjacent step, because interleaving cannot
observe it.  The header offsets are imported from ``spsc_ring`` itself
so the model and the implementation share a single layout definition.

The two actors:

* **producer** — publishes ``frames`` whole frames of ``frame_words``
  words each (the model's stand-in for ``MESSAGE_WORDS``-word
  messages), then stores the stop flag.  Exactly like
  ``publish_words``: free space is computed against a *cached* head,
  refreshed only when the cached view says the ring is full; payload
  words are written one at a time; the single ``tail`` store publishes
  the frame.  A producer that still sees a full ring after a refresh
  blocks; if the consumer has crashed it gives up — the model's
  ``ChannelFullError`` fail-closed path.
* **consumer** — mirrors ``consume_words`` + ``ack``: refresh the
  cached tail only when the cached view says empty, read every pending
  payload word, store ``head`` once per drained span, then store
  ``acked`` (the dispatch position the shard ack aggregation reads).
  After the stop flag is observed and a final tail load confirms the
  ring is empty, the consumer is done.

Payload word at stream position ``q`` always carries the value
``q + 1``, so a consumer-side read can be checked *exactly*: any torn
frame, lost word, duplicated word, or overwritten slot surfaces as a
value mismatch on the first bad read.

Crashes: at every reachable step either actor may crash (halt forever),
bounded by ``crash_budget``.  Terminal states are then classified and
checked for the fail-closed outcomes — a crashed producer must leave
the consumer able to drain every fully-published frame with nothing
torn; a crashed consumer must leave the producer either finished or
failed-closed on a full ring, never wedged or overflowing.

``mutation`` selects a seeded protocol mutant (see
:mod:`repro.mc.mutants`) that the checker must catch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.core.messages import MESSAGE_WORDS
from repro.ipc.spsc_ring import HDR_ACKED, HDR_HEAD, HDR_STOP, HDR_TAIL
from repro.mc.explorer import Step

#: Mutant identifiers (the ring-protocol half; the shard-lifecycle
#: mutants live in :mod:`repro.mc.shard_model`).
REORDER_PUBLISH = "reorder-publish"
STALE_FREE_WINDOW = "stale-free-window"
SKIP_FRAME_CHECK = "skip-frame-check"

_SPSC_MUTATIONS = (REORDER_PUBLISH, STALE_FREE_WINDOW, SKIP_FRAME_CHECK)

#: Footprint tokens for crash transitions (crashes conflict with each
#: other through the shared budget, and ``p_give_up`` reads the
#: consumer's liveness).
_P_ALIVE = "p-alive"
_C_ALIVE = "c-alive"
_CRASH_BUDGET = "crash-budget"


@dataclass(frozen=True)
class ProducerState:
    phase: str = "idle"        # idle|write|blocked|done|failed|crashed
    frames_done: int = 0
    widx: int = 0              # payload word index within current frame
    tail_local: int = 0
    cached_head: int = 0


@dataclass(frozen=True)
class ConsumerState:
    phase: str = "idle"        # idle|read|done|crashed
    head_local: int = 0
    cached_tail: int = 0
    widx: int = 0              # words read in the current span
    partial: int = 0           # payload words read past a frame boundary
    stop_seen: bool = False


@dataclass(frozen=True)
class SpscState:
    """Complete system state: shared words + both actors' locals."""

    head: int = 0
    acked: int = 0
    tail: int = 0
    stop: int = 0
    data: Tuple[int, ...] = ()
    p: ProducerState = ProducerState()
    c: ConsumerState = ConsumerState()
    crashes: int = 0

    def key(self):
        return (self.head, self.acked, self.tail, self.stop, self.data,
                self.p, self.c, self.crashes)


class SpscModel:
    """The bounded SPSC protocol model, parameterized by a mutation."""

    def __init__(self, capacity_words: int = 4, frame_words: int = 2,
                 frames: int = 3, crash_budget: int = 1,
                 mutation: Optional[str] = None) -> None:
        if capacity_words & (capacity_words - 1) or capacity_words <= 0:
            raise ValueError("capacity_words must be a power of two")
        if mutation is not None and mutation not in _SPSC_MUTATIONS:
            raise ValueError(f"unknown SPSC mutation {mutation!r}")
        self.capacity = capacity_words
        self.mask = capacity_words - 1
        self.frame_words = frame_words
        self.frames = frames
        self.crash_budget = crash_budget
        self.mutation = mutation

    def describe(self) -> dict:
        return {
            "capacity_words": self.capacity,
            "frame_words": self.frame_words,
            "frames": self.frames,
            "crash_budget": self.crash_budget,
            "mutation": self.mutation,
            "real_message_words": MESSAGE_WORDS,
        }

    # -- state construction --------------------------------------------------

    def initial_state(self) -> SpscState:
        return SpscState(data=(0,) * self.capacity)

    # -- frame geometry ------------------------------------------------------

    def _frame_len(self, frame_id: int) -> int:
        """Words the producer writes/advances for ``frame_id``.

        The skip-frame-length-check mutant lets a truncated final frame
        through — the real code's round-down to whole messages is the
        guard this models losing.
        """
        if (self.mutation == SKIP_FRAME_CHECK
                and frame_id == self.frames - 1):
            return self.frame_words - 1
        return self.frame_words

    # -- enabled transitions -------------------------------------------------

    def enabled(self, state: SpscState) -> List[Step]:
        steps: List[Step] = []
        p_step = self._producer_step(state)
        if p_step is not None:
            steps.append(p_step)
        c_step = self._consumer_step(state)
        if c_step is not None:
            steps.append(c_step)
        # Crash-at-every-step: while budget remains, either live actor
        # may halt here.  (The crash of an already-finished actor is
        # indistinguishable from its absence.)
        if state.crashes < self.crash_budget:
            if state.p.phase not in ("done", "failed", "crashed"):
                steps.append(Step(
                    "p_crash", "producer",
                    frozenset(), frozenset({_P_ALIVE, _CRASH_BUDGET}),
                    self._apply_p_crash))
            if state.c.phase not in ("done", "crashed"):
                steps.append(Step(
                    "c_crash", "consumer",
                    frozenset(), frozenset({_C_ALIVE, _CRASH_BUDGET}),
                    self._apply_c_crash))
        return steps

    # -- producer ------------------------------------------------------------

    def _free_words(self, state: SpscState) -> int:
        free = self.capacity - (state.p.tail_local - state.p.cached_head)
        if self.mutation == STALE_FREE_WINDOW:
            # The widened-cached-index-window mutant: the producer
            # credits itself one frame of phantom space, the classic
            # off-by-one against a stale consumer index.
            free += self.frame_words
        return free

    def _producer_step(self, state: SpscState) -> Optional[Step]:
        p = state.p
        if p.phase == "idle":
            if p.frames_done == self.frames:
                return Step("p_store_stop", "producer", frozenset(),
                            frozenset({HDR_STOP}), self._apply_store_stop)
            want = self._frame_len(p.frames_done)
            if self._free_words(state) >= want:
                return self._write_or_publish_step(state)
            return Step("p_load_head", "producer", frozenset({HDR_HEAD}),
                        frozenset(), self._apply_load_head)
        if p.phase == "blocked":
            if state.head != p.cached_head:
                return Step("p_reload_head", "producer",
                            frozenset({HDR_HEAD}), frozenset(),
                            self._apply_load_head)
            if state.c.phase == "crashed":
                return Step("p_give_up", "producer",
                            frozenset({HDR_HEAD, _C_ALIVE}), frozenset(),
                            self._apply_give_up)
            return None
        if p.phase == "write":
            return self._write_or_publish_step(state)
        return None  # done | failed | crashed

    def _write_or_publish_step(self, state: SpscState) -> Step:
        """The next atomic action of an in-progress frame publish."""
        p = state.p
        want = self._frame_len(p.frames_done)
        reordered = self.mutation == REORDER_PUBLISH
        tail_is_next = (p.widx == 0) if reordered else (p.widx == want)
        if tail_is_next:
            return Step("p_store_tail", "producer", frozenset(),
                        frozenset({HDR_TAIL}), self._apply_store_tail)
        widx = p.widx - 1 if reordered else p.widx
        slot = (p.tail_local + widx) & self.mask
        return Step(f"p_write@{slot}", "producer", frozenset(),
                    frozenset({("d", slot)}), self._apply_write_data)

    def _apply_load_head(self, state: SpscState):
        p = state.p
        cached = state.head
        want = self._frame_len(p.frames_done) \
            if p.frames_done < self.frames else self.frame_words
        free = self.capacity - (p.tail_local - cached)
        if self.mutation == STALE_FREE_WINDOW:
            free += self.frame_words
        phase = "idle" if free >= want else "blocked"
        return replace(state, p=replace(p, cached_head=cached,
                                        phase=phase)), None

    def _apply_give_up(self, state: SpscState):
        return replace(state, p=replace(state.p, phase="failed")), None

    def _apply_write_data(self, state: SpscState):
        p = state.p
        reordered = self.mutation == REORDER_PUBLISH
        widx = p.widx - 1 if reordered else p.widx
        position = p.tail_local + widx
        slot = position & self.mask
        data = list(state.data)
        data[slot] = position + 1
        want = self._frame_len(p.frames_done)
        if reordered and widx + 1 == want:
            # Mutant frame complete (tail was stored first): the local
            # bookkeeping folds into this last payload write.
            new_p = replace(p, phase="idle", widx=0,
                            tail_local=p.tail_local + want,
                            frames_done=p.frames_done + 1)
        else:
            new_p = replace(p, phase="write", widx=p.widx + 1)
        return replace(state, data=tuple(data), p=new_p), None

    def _apply_store_tail(self, state: SpscState):
        p = state.p
        want = self._frame_len(p.frames_done)
        new_tail = p.tail_local + want
        if self.mutation == REORDER_PUBLISH:
            # Mutant: publish first, copy payload afterwards.  The
            # frame is not complete until the payload writes follow.
            child = replace(state, tail=new_tail,
                            p=replace(p, phase="write", widx=1))
            return self._header_checks(state, child)
        child = replace(state, tail=new_tail,
                        p=replace(p, phase="idle", widx=0,
                                  tail_local=new_tail,
                                  frames_done=p.frames_done + 1))
        return self._header_checks(state, child)

    def _apply_store_stop(self, state: SpscState):
        child = replace(state, stop=1,
                        p=replace(state.p, phase="done"))
        return self._header_checks(state, child)

    def _apply_p_crash(self, state: SpscState):
        # A reordered-publish producer may crash with tail already
        # advanced past its payload writes; tail_local must reflect the
        # published (shared) tail for bookkeeping, but the actor halts.
        return replace(state, crashes=state.crashes + 1,
                       p=replace(state.p, phase="crashed")), None

    # -- consumer ------------------------------------------------------------

    def _consumer_step(self, state: SpscState) -> Optional[Step]:
        c = state.c
        if c.phase == "read":
            if c.head_local + c.widx < c.cached_tail:
                slot = (c.head_local + c.widx) & self.mask
                return Step(f"c_read@{slot}", "consumer",
                            frozenset({("d", slot)}), frozenset(),
                            self._apply_read_data)
            return Step("c_store_head", "consumer", frozenset(),
                        frozenset({HDR_HEAD}), self._apply_store_head)
        if c.phase == "ack":
            return Step("c_ack", "consumer", frozenset(),
                        frozenset({HDR_ACKED}), self._apply_ack)
        if c.phase == "idle":
            if c.cached_tail > c.head_local:
                slot = c.head_local & self.mask
                return Step(f"c_read@{slot}", "consumer",
                            frozenset({("d", slot)}), frozenset(),
                            self._apply_begin_read)
            if state.tail != c.cached_tail:
                return Step("c_load_tail", "consumer",
                            frozenset({HDR_TAIL}), frozenset(),
                            self._apply_load_tail)
            if state.stop and not c.stop_seen:
                return Step("c_load_stop", "consumer",
                            frozenset({HDR_STOP}), frozenset(),
                            self._apply_load_stop)
            if c.stop_seen:
                # Final confirmation: stop seen, cached tail already
                # refreshed and equal to head — the drain loop exits.
                return Step("c_done", "consumer",
                            frozenset({HDR_TAIL, HDR_STOP}), frozenset(),
                            self._apply_done)
            return None  # blocked: nothing published, no stop flag
        return None  # done | crashed

    def _apply_load_tail(self, state: SpscState):
        return replace(state, c=replace(state.c,
                                        cached_tail=state.tail)), None

    def _apply_load_stop(self, state: SpscState):
        return replace(state, c=replace(state.c, stop_seen=True)), None

    def _apply_done(self, state: SpscState):
        return replace(state, c=replace(state.c, phase="done")), None

    def _check_read(self, state: SpscState, position: int) -> Optional[str]:
        value = state.data[position & self.mask]
        if value != position + 1:
            return (f"torn/corrupt frame: consumer read {value} at stream "
                    f"position {position}, expected {position + 1}")
        return None

    def _apply_begin_read(self, state: SpscState):
        violation = self._check_read(state, state.c.head_local)
        partial = (state.c.partial + 1) % self.frame_words
        return replace(state, c=replace(state.c, phase="read", widx=1,
                                        partial=partial)), violation

    def _apply_read_data(self, state: SpscState):
        c = state.c
        violation = self._check_read(state, c.head_local + c.widx)
        partial = (c.partial + 1) % self.frame_words
        return replace(state, c=replace(c, widx=c.widx + 1,
                                        partial=partial)), violation

    def _apply_store_head(self, state: SpscState):
        c = state.c
        new_head = c.head_local + c.widx
        child = replace(state, head=new_head,
                        c=replace(c, phase="ack", head_local=new_head,
                                  widx=0))
        return self._header_checks(state, child)

    def _apply_ack(self, state: SpscState):
        child = replace(state, acked=state.c.head_local,
                        c=replace(state.c, phase="idle"))
        return self._header_checks(state, child)

    def _apply_c_crash(self, state: SpscState):
        return replace(state, crashes=state.crashes + 1,
                       c=replace(state.c, phase="crashed")), None

    # -- invariants ----------------------------------------------------------

    def _header_checks(self, parent: SpscState,
                       child: SpscState) -> Tuple[SpscState, Optional[str]]:
        """Invariants over the shared header, checked on every header
        store: free-running monotonicity and bounded occupancy."""
        if child.head < parent.head:
            return child, (f"head position regressed: "
                           f"{parent.head} -> {child.head}")
        if child.tail < parent.tail:
            return child, (f"tail position regressed: "
                           f"{parent.tail} -> {child.tail}")
        if child.acked < parent.acked:
            return child, (f"acked position regressed: "
                           f"{parent.acked} -> {child.acked}")
        if child.stop < parent.stop:
            return child, "stop flag was cleared"
        occupancy = child.tail - child.head
        if occupancy < 0:
            return child, (f"consumer overran producer: head {child.head} "
                           f"> tail {child.tail}")
        if occupancy > self.capacity:
            return child, (f"occupancy {occupancy} exceeds capacity "
                           f"{self.capacity}: unconsumed data overwritten")
        if child.acked > child.head:
            return child, (f"acked {child.acked} ran ahead of consumed "
                           f"{child.head}")
        return child, None

    def apply(self, state: SpscState, step: Step):
        return step.fn(state)

    # -- terminal classification ---------------------------------------------

    def terminal_violation(self, state: SpscState) -> Optional[str]:
        p, c = state.p, state.c
        total_words = sum(self._frame_len(i) for i in range(self.frames))
        if p.phase == "crashed":
            # Fail-closed after a producer crash: the consumer drains
            # every fully-published word untorn and acknowledges it;
            # the kernel's epoch timeout owns the rest of the story.
            if c.phase == "crashed":
                return None  # unreachable with crash_budget=1
            if state.head != state.tail:
                return (f"producer crashed but consumer wedged with "
                        f"{state.tail - state.head} published words "
                        f"unconsumed")
            if state.acked != state.head:
                return (f"producer crashed: consumer consumed {state.head} "
                        f"words but acked only {state.acked}")
            return None
        if c.phase == "crashed":
            # Fail-closed after a consumer crash: the producer either
            # finished (ring had room) or failed closed on a full ring;
            # it must never wedge in any other shape.
            if p.phase not in ("done", "failed"):
                return (f"consumer crashed but producer wedged in phase "
                        f"{p.phase!r}")
            return None
        # Crash-free terminal: everything published, consumed, acked.
        if p.phase != "done" or c.phase != "done":
            return (f"deadlock: producer {p.phase!r} / consumer "
                    f"{c.phase!r} with no enabled step")
        if state.tail != total_words:
            return (f"producer finished having published {state.tail} "
                    f"words, expected {total_words}")
        if state.head != state.tail:
            return (f"lost messages: {state.tail - state.head} published "
                    f"words never consumed")
        if c.partial:
            return (f"torn frame at shutdown: {c.partial} words of a "
                    f"frame consumed without its remainder")
        if state.acked != state.head:
            return (f"dispatch position {state.acked} never caught up to "
                    f"consumed position {state.head}")
        return None
