"""Exhaustive interleaving exploration: DFS + state hashing + sleep sets.

The explorer is generic over a *model* object providing four hooks::

    model.initial_state()           -> state  (must expose .key())
    model.enabled(state)            -> [Step, ...]
    model.apply(state, step)        -> (child_state, violation | None)
    model.terminal_violation(state) -> violation | None   # no steps left

A :class:`Step` is one atomic action of one actor — in the SPSC model,
a single header-word load or store, a single payload-slot access, or a
crash — annotated with its shared-location footprint.  The footprint
drives the sleep-set partial-order reduction: two steps of different
actors *commute* when neither writes a location the other touches, so
exploring both orders of an independent pair proves nothing new.

Soundness notes, because POR + state hashing is where model checkers
quietly go wrong:

* Enabledness guards must be covered by the declared ``reads`` set —
  every model step here declares the shared words its guard consults,
  so an independent step can never enable/disable a sleeping one.
* A visited state is only skipped when it was previously explored with
  a sleep set *no larger* than the current one (the earlier visit
  explored a superset of the orderings we would explore now).  With
  POR disabled the sleep set is always empty and this degenerates to
  plain state hashing.

``explore(model, por=False)`` is therefore the ground truth and
``por=True`` the optimization; ``tests/test_mc.py`` pins that both
modes reach identical verdicts on the clean model and on every seeded
mutant, and the CLI reports the reduction factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

#: Hard backstop on explored transitions: the models are finite by
#: construction, so hitting this means a model bug, not a big run.
DEFAULT_MAX_TRANSITIONS = 5_000_000


@dataclass(frozen=True)
class Step:
    """One atomic transition of one actor.

    ``reads``/``writes`` are the shared-location footprint (header
    words, payload slots, crash tokens) including everything the
    enabledness guard consulted; ``fn`` maps a state to
    ``(child_state, violation-or-None)``.
    """

    name: str
    actor: str
    reads: FrozenSet
    writes: FrozenSet
    fn: Callable = field(compare=False, hash=False)

    def footprint_key(self) -> Tuple[str, FrozenSet, FrozenSet]:
        return (self.name, self.reads, self.writes)


def independent(a: Step, b: Step) -> bool:
    """Do ``a`` and ``b`` commute?  Different actors, no write overlap."""
    if a.actor == b.actor:
        return False
    if a.writes & b.writes:
        return False
    if a.writes & b.reads or b.writes & a.reads:
        return False
    return True


@dataclass
class ModelViolation:
    """One invariant breach, with the interleaving that produced it."""

    message: str
    trace: Tuple[str, ...]

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.message}  [after {' -> '.join(self.trace[-8:])}]"


@dataclass
class ExploreResult:
    """Outcome of one exhaustive exploration."""

    states: int = 0
    transitions: int = 0
    terminals: int = 0
    max_depth: int = 0
    truncated: bool = False
    violations: List[ModelViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.truncated

    def summary(self) -> Dict[str, object]:
        return {
            "states": self.states,
            "transitions": self.transitions,
            "terminals": self.terminals,
            "max_depth": self.max_depth,
            "truncated": self.truncated,
            "violations": [
                {"message": v.message, "trace": list(v.trace)}
                for v in self.violations
            ],
        }


def explore(model, por: bool = True,
            max_transitions: int = DEFAULT_MAX_TRANSITIONS,
            max_violations: int = 16) -> ExploreResult:
    """Exhaustively explore ``model``'s interleaving space.

    Iterative DFS (the SPSC model's deepest traces exceed CPython's
    default recursion limit).  Violations are collected, not raised,
    so one sweep reports every distinct invariant breach up to
    ``max_violations``; exploration then keeps going to finish the
    state count unless the violation budget is exhausted.
    """
    result = ExploreResult()
    initial = model.initial_state()
    #: state key -> sleep-name-sets it was explored under.  A revisit
    #: is redundant iff some earlier visit used a subset sleep set.
    visited: Dict[object, List[FrozenSet[str]]] = {}

    def seen(key, sleep_names: FrozenSet[str]) -> bool:
        prior = visited.get(key)
        if prior is not None:
            for p in prior:
                if p <= sleep_names:
                    return True
            prior[:] = [p for p in prior if not (sleep_names <= p)]
            prior.append(sleep_names)
        else:
            visited[key] = [sleep_names]
        return False

    # Stack frames: (state, steps, next index, sleep dict name->Step,
    # trace tuple).  The sleep set grows as siblings are explored.
    initial_sleep: Dict[str, Step] = {}
    if seen(initial.key(), frozenset()):
        return result
    result.states = 1
    stack = [(initial, model.enabled(initial), 0, initial_sleep, ())]

    while stack:
        state, steps, index, sleep, trace = stack[-1]
        if index == 0 and not steps:
            result.terminals += 1
            message = model.terminal_violation(state)
            if message is not None:
                result.violations.append(ModelViolation(message, trace))
            stack.pop()
            continue
        if index >= len(steps):
            stack.pop()
            continue
        stack[-1] = (state, steps, index + 1, sleep, trace)
        step = steps[index]
        if por and step.name in sleep:
            continue
        if result.transitions >= max_transitions:
            result.truncated = True
            break
        result.transitions += 1
        child, violation = model.apply(state, step)
        child_trace = trace + (step.name,)
        if violation is not None:
            result.violations.append(ModelViolation(violation, child_trace))
            if len(result.violations) >= max_violations:
                break
            # A violating step still yields a state; do not descend
            # through it (the invariant already failed on this path).
            if por:
                sleep[step.name] = step
            continue
        child_sleep: Dict[str, Step] = {}
        if por:
            child_sleep = {name: s for name, s in sleep.items()
                           if independent(s, step)}
        if not seen(child.key(), frozenset(child_sleep)):
            result.states += 1
            depth = len(child_trace)
            if depth > result.max_depth:
                result.max_depth = depth
            stack.append((child, model.enabled(child), 0, child_sleep,
                          child_trace))
        if por:
            sleep[step.name] = step

    return result
