"""Seeded protocol mutants: proof that the checker has teeth.

A model checker that never fires is indistinguishable from one that
checks nothing, so — mirroring ``python -m repro.lint --disable-pass``
— every analysis in this package ships with mutants it must catch:

* ``reorder-publish`` — the producer stores ``tail`` *before* copying
  the payload words (the exact store the real ``publish_words`` orders
  last); the explorer must find an interleaving where the consumer
  reads a torn frame.
* ``stale-free-window`` — the producer credits itself one frame of
  space beyond its cached consumer index (a widened cached-index
  window); the explorer must find occupancy exceeding capacity or an
  overwritten unconsumed slot.
* ``skip-frame-check`` — the whole-frame round-down is skipped and a
  truncated frame crosses the ring; the explorer must find a frame
  consumed without its remainder.
* ``misscoped-kill`` — the kernel barrier's kill sweep leaks onto a
  live shard's pid; the lifecycle model must flag the scope breach.
* ``epoch-max`` — the ack epoch aggregates ``max`` over live shards
  instead of ``min``; the lifecycle model must flag the epoch running
  ahead of a live shard.
* ``racy-publish`` — a *real* :class:`~repro.ipc.spsc_ring.SpscRing`
  subclass whose publish reorders the release store, driven through a
  real shared-memory segment; the happens-before detector must flag
  the unsynchronized payload access.

:func:`run_mutation_gate` runs all of them plus the clean baselines
and reports, per mutant, whether it was caught; any miss fails the
``python -m repro.mc`` gate (and CI with it).
"""

from __future__ import annotations

from array import array
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.messages import MESSAGE_WORDS
from repro.ipc.spsc_ring import (HDR_HEAD, HDR_TAIL, HEADER_WORDS,
                                 SpscRing)
from repro.mc.explorer import explore
from repro.mc.model import (REORDER_PUBLISH, SKIP_FRAME_CHECK,
                            STALE_FREE_WINDOW, SpscModel)
from repro.mc.race import RaceDetector, RingProbe
from repro.mc.shard_model import (EPOCH_MAX, MIS_SCOPED_KILL,
                                  ShardLifecycleModel)

#: Model bounds for the two sweep tiers.  Quick keeps the CI job in
#: seconds; full widens every bound (real 4-word messages, deeper
#: frame counts, two crashes) for the acceptance sweep.
QUICK_SPSC = dict(capacity_words=4, frame_words=2, frames=3,
                  crash_budget=1)
FULL_SPSC = dict(capacity_words=8, frame_words=MESSAGE_WORDS, frames=4,
                 crash_budget=2)
QUICK_SHARD = dict(num_shards=2, pids_per_shard=2, ack_steps=2,
                   death_budget=1)
FULL_SHARD = dict(num_shards=3, pids_per_shard=2, ack_steps=3,
                  death_budget=1)

RACY_PUBLISH = "racy-publish"


class RacyPublishRing(SpscRing):
    """Mutant ring: the ``tail`` release store happens *first*.

    Everything else — free-space accounting, wrap-around copy, probe
    emission — matches :meth:`SpscRing.publish_words`; only the
    publication order is broken, which is invisible to every
    sequential test and exactly what the happens-before detector must
    see through.
    """

    def publish_words(self, words, start: int = 0) -> int:
        tail = self._tail_local
        want = (len(words) - start) & ~(MESSAGE_WORDS - 1)
        if want <= 0:
            return 0
        probe = self._probe
        free = self.capacity_words - (tail - self._cached_head)
        if free < want:
            self._cached_head = self._words[HDR_HEAD]
            if probe is not None:
                probe.sync_load(self._probe_producer, HDR_HEAD,
                                self._cached_head)
            free = self.capacity_words - (tail - self._cached_head)
        n = min(want, free & ~(MESSAGE_WORDS - 1))
        if n <= 0:
            return 0
        if not isinstance(words, memoryview):
            words = memoryview(words)
        # Mutation: publish before the payload exists.
        self._tail_local = tail + n
        self._words[HDR_TAIL] = tail + n
        if probe is not None:
            probe.sync_store(self._probe_producer, HDR_TAIL, tail + n)
        pos = tail & self._mask
        first = min(n, self.capacity_words - pos)
        base = HEADER_WORDS + pos
        self._words[base:base + first] = words[start:start + first]
        if first < n:
            self._words[HEADER_WORDS:HEADER_WORDS + n - first] = \
                words[start + first:start + n]
        if probe is not None:
            probe.data_write(self._probe_producer, pos, first)
            if first < n:
                probe.data_write(self._probe_producer, 0, n - first)
        return n


def scripted_ring_trace(racy: bool = False,
                        capacity_words: int = 16,
                        messages: int = 12) -> Dict[str, List]:
    """Drive a real shared-memory ring through a wrap-heavy script.

    One producer endpoint (owning the segment) and one independently
    attached consumer endpoint, each with its own probe, interleaved
    so the ring fills (forcing the lazy head refresh), wraps several
    times, and shuts down through the stop flag.  Returns the two
    per-endpoint probe logs keyed by actor name — the detector merges
    them exactly as it would merge logs from two OS processes.
    """
    ring_cls = RacyPublishRing if racy else SpscRing
    producer = ring_cls.create(capacity_words=capacity_words)
    consumer = SpscRing.attach(producer.name, capacity_words)
    p_probe, c_probe = RingProbe(), RingProbe()
    producer.attach_probe(p_probe, producer="producer")
    consumer.attach_probe(c_probe, consumer="consumer")
    try:
        frame = array("Q", range(1, MESSAGE_WORDS + 1))
        sent = 0
        while sent < messages:
            if producer.publish_words(frame) == 0:
                # Full: let the consumer drain one batch, then retry —
                # the backpressure path that exercises the head reload.
                consumer.consume_words(MESSAGE_WORDS)
                consumer.ack(consumer.consumed())
                continue
            sent += 1
            if sent % 3 == 0:
                consumer.consume_words()
                consumer.ack(consumer.consumed())
        producer.request_stop()
        while not consumer.stop_requested() \
                or consumer.occupancy_words():
            if not consumer.consume_words():
                break
            consumer.ack(consumer.consumed())
        return {"producer": list(p_probe.events),
                "consumer": list(c_probe.events)}
    finally:
        consumer.close()
        producer.close()


# ---------------------------------------------------------------------------
# The gate
# ---------------------------------------------------------------------------

def _spsc_case(mutation: Optional[str], quick: bool):
    bounds = QUICK_SPSC if quick else FULL_SPSC
    result = explore(SpscModel(mutation=mutation, **bounds))
    return result.summary()


def _shard_case(mutation: Optional[str], quick: bool):
    bounds = QUICK_SHARD if quick else FULL_SHARD
    result = explore(ShardLifecycleModel(mutation=mutation, **bounds))
    return result.summary()


def _race_case(racy: bool, quick: bool):
    detector = RaceDetector()
    detector.feed_logs(scripted_ring_trace(
        racy=racy, messages=8 if quick else 24))
    return detector.summary()


#: name -> (engine, runner).  Runners take ``quick`` and return a
#: summary dict whose ``violations``/``races`` list must be non-empty
#: for the mutant to count as caught.
MUTANTS: Dict[str, Tuple[str, Callable]] = {
    REORDER_PUBLISH: ("spsc-model",
                      lambda quick: _spsc_case(REORDER_PUBLISH, quick)),
    STALE_FREE_WINDOW: ("spsc-model",
                        lambda quick: _spsc_case(STALE_FREE_WINDOW, quick)),
    SKIP_FRAME_CHECK: ("spsc-model",
                       lambda quick: _spsc_case(SKIP_FRAME_CHECK, quick)),
    MIS_SCOPED_KILL: ("shard-model",
                      lambda quick: _shard_case(MIS_SCOPED_KILL, quick)),
    EPOCH_MAX: ("shard-model",
                lambda quick: _shard_case(EPOCH_MAX, quick)),
    RACY_PUBLISH: ("race-detector",
                   lambda quick: _race_case(True, quick)),
}


def run_mutation_gate(quick: bool = True) -> Dict[str, object]:
    """Run every seeded mutant; each must be caught by its engine."""
    results: Dict[str, object] = {}
    missed: List[str] = []
    for name, (engine, runner) in MUTANTS.items():
        summary = runner(quick)
        findings = summary.get("violations", summary.get("races", []))
        caught = bool(findings)
        if not caught:
            missed.append(name)
        results[name] = {
            "engine": engine,
            "caught": caught,
            "findings": len(findings),
            "first": (findings[0]["message"]
                      if findings and isinstance(findings[0], dict)
                      else (findings[0] if findings else None)),
        }
    return {"mutants": results, "missed": missed,
            "ok": not missed}
