"""``python -m repro.mc`` — the concurrency soundness gate.

One command, four verdicts, all of which must hold for the gate to
exit zero:

1. **SPSC protocol model** — exhaustive exploration of the abstract
   ring protocol (including producer/consumer crashes at every
   reachable step) finds zero invariant violations, in both full and
   sleep-set-reduced mode, with identical verdicts.
2. **Shard lifecycle model** — exhaustive exploration of shard ack /
   death / barrier interleavings finds zero violations, and the real
   :class:`~repro.core.shard_verifier.ShardedVerifier` conforms to the
   model's decisions in every single-death scenario.
3. **Race detector self-check** — a clean scripted two-endpoint ring
   run is silent; the seeded racy-publish ring is flagged.
4. **Mutation gate** — every seeded protocol mutant is caught by its
   analysis (``--mutate`` runs only this).

``--quick`` shrinks the model bounds for CI (still exhaustive within
the bounds, just smaller ones); ``--json PATH`` writes the full
machine-readable report that the CI job uploads as an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict

from repro.mc.explorer import explore
from repro.mc.model import SpscModel
from repro.mc.mutants import (FULL_SHARD, FULL_SPSC, QUICK_SHARD,
                              QUICK_SPSC, run_mutation_gate,
                              scripted_ring_trace)
from repro.mc.race import RaceDetector
from repro.mc.shard_model import ShardLifecycleModel, conformance_check


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    value = fn(*args, **kwargs)
    return value, time.perf_counter() - start


def _model_section(model, label: str, out: Dict[str, object]) -> bool:
    """Explore ``model`` both ways; record stats; return pass/fail."""
    full, full_s = _timed(explore, model, por=False)
    por, por_s = _timed(explore, model, por=True)
    agree = (bool(full.violations) == bool(por.violations)
             and full.terminals > 0)
    out[label] = {
        "bounds": model.describe(),
        "full": full.summary(),
        "por": por.summary(),
        "seconds": round(full_s + por_s, 3),
        "reduction": (round(full.transitions / por.transitions, 2)
                      if por.transitions else None),
        "agree": agree,
    }
    ok = full.ok and por.ok and agree
    status = "ok" if ok else "FAIL"
    print(f"  {label:<14} {status:>4}  states={full.states} "
          f"transitions={full.transitions} (por {por.transitions}) "
          f"terminals={full.terminals} "
          f"violations={len(full.violations)}  [{full_s + por_s:.2f}s]")
    for violation in (full.violations + por.violations)[:4]:
        print(f"    !! {violation}")
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.mc",
        description="SPSC-ring model checking + happens-before race "
                    "detection gate")
    parser.add_argument("--quick", action="store_true",
                        help="CI bounds: smaller (still exhaustive) models")
    parser.add_argument("--mutate", action="store_true",
                        help="run only the mutation gate")
    parser.add_argument("--json", metavar="PATH",
                        help="write the machine-readable report to PATH")
    args = parser.parse_args(argv)

    report: Dict[str, object] = {"quick": args.quick}
    ok = True
    started = time.perf_counter()

    if not args.mutate:
        print("model checking (exhaustive, full + sleep-set POR):")
        spsc_bounds = QUICK_SPSC if args.quick else FULL_SPSC
        shard_bounds = QUICK_SHARD if args.quick else FULL_SHARD
        ok &= _model_section(SpscModel(**spsc_bounds), "spsc-ring", report)
        ok &= _model_section(ShardLifecycleModel(**shard_bounds),
                             "shard-lifecycle", report)

        conform, conform_s = _timed(conformance_check)
        conform_ok = not conform["mismatches"]
        report["conformance"] = dict(conform, seconds=round(conform_s, 3))
        ok &= conform_ok
        print(f"  {'conformance':<14} {'ok' if conform_ok else 'FAIL':>4}  "
              f"cases={conform['cases']} "
              f"mismatches={len(conform['mismatches'])}  [{conform_s:.2f}s]")
        for mismatch in conform["mismatches"][:4]:
            print(f"    !! {mismatch}")

        print("race detector self-check (real shared-memory rings):")
        clean = RaceDetector().feed_logs(
            scripted_ring_trace(racy=False,
                                messages=8 if args.quick else 24))
        clean_ok = clean.clean
        report["race-clean"] = clean.summary()
        ok &= clean_ok
        print(f"  {'clean ring':<14} {'ok' if clean_ok else 'FAIL':>4}  "
              f"events={clean.events_processed} races={len(clean.races)}")
        for race in clean.races[:4]:
            print(f"    !! false positive: {race}")

    print("mutation gate (every seeded mutant must be caught):")
    gate, gate_s = _timed(run_mutation_gate, args.quick)
    report["mutation-gate"] = dict(gate, seconds=round(gate_s, 3))
    ok &= gate["ok"]
    for name, entry in gate["mutants"].items():
        status = "caught" if entry["caught"] else "MISSED"
        print(f"  {name:<18} {status:>6}  engine={entry['engine']} "
              f"findings={entry['findings']}")
        if entry["caught"] and entry["first"]:
            print(f"    -> {entry['first']}")

    elapsed = time.perf_counter() - started
    report["ok"] = ok
    report["seconds"] = round(elapsed, 3)
    print(f"{'PASS' if ok else 'FAIL'} in {elapsed:.2f}s")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.json}")

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
