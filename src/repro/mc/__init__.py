"""Concurrency soundness layer: model checking + race detection.

The sharded verifier runtime rests on two ordering-sensitive
mechanisms — the lock-free SPSC ring (:mod:`repro.ipc.spsc_ring`) and
the scoped shard-death lifecycle (:mod:`repro.core.shard_verifier`).
Example-based tests hammer them; this package *proves* them, twice
over, with two independent engines:

* :mod:`repro.mc.model` / :mod:`repro.mc.explorer` — an abstract
  operational model of the SPSC protocol, decomposed into atomic
  header-word loads and stores, exhaustively explored (DFS with state
  hashing and sleep-set partial-order reduction) at bounded depth.
  Every reachable interleaving — including a producer or consumer
  crash at every reachable step — is checked against the core
  invariants: no torn frames, free-running position monotonicity, no
  lost or duplicated messages, occupancy ≤ capacity, fail-closed
  crash outcomes.
* :mod:`repro.mc.race` — a FastTrack-style vector-clock/epoch
  happens-before race detector over shadow cells, fed by the
  zero-cost-when-disabled probe hooks in
  :meth:`repro.ipc.spsc_ring.SpscRing.attach_probe`, so *real* ring
  executions (inline coordinator runs, multi-process shard workers,
  chaos sweeps) are checked for unsynchronized conflicting accesses.

:mod:`repro.mc.shard_model` extends the state-space exploration to the
shard lifecycle (shard death condemns only its own pids; the ack epoch
is the minimum over live shards) and cross-checks the abstract model
against the real :class:`~repro.core.shard_verifier.ShardedVerifier`.
:mod:`repro.mc.mutants` is the teeth-check: seeded protocol mutants
the checker must each catch, mirroring ``repro.lint --disable-pass``.

CLI::

    python -m repro.mc            # full sweep + mutation gate + races
    python -m repro.mc --quick    # CI bounds
    python -m repro.mc --mutate   # mutation gate only
    python -m repro.mc --json mc_report.json
"""

from repro.mc.explorer import ExploreResult, Step, explore
from repro.mc.model import SpscModel
from repro.mc.mutants import MUTANTS, run_mutation_gate
from repro.mc.race import RaceDetector, RingProbe
from repro.mc.shard_model import ShardLifecycleModel, conformance_check

__all__ = [
    "ExploreResult",
    "Step",
    "explore",
    "SpscModel",
    "MUTANTS",
    "run_mutation_gate",
    "RaceDetector",
    "RingProbe",
    "ShardLifecycleModel",
    "conformance_check",
]
