"""Clang/LLVM CFI baseline (coarse-grained, type-based) [30].

Forward edges are partitioned into equivalence classes by *language-
level function type*: an indirect call through a pointer of signature
``T`` may only target address-taken functions whose signature is
exactly ``T``.  This is fast and widely deployed, but:

* **false positives** — C programs legally call through a pointer whose
  static type differs from the callee's (casting/decay); povray defines
  ``void *(void *)`` and calls it as ``void *(pov::Object_Struct *)``
  (section 5.1).  Here that emerges mechanically: the call-site class
  is keyed by the *static* signature at the call, so a type-cast target
  lands outside it.
* **code-reuse attacks** — any function in the same class is a valid
  target, so redirecting a pointer to a same-signature dangerous
  function (return-to-libc style) passes the check (Table 5's 160
  return-to-libc exploits against Clang CFI).

Backward edges use Clang's SafeStack with guard pages between the safe
and unsafe stacks (section 5.2), configured via
:class:`~repro.sim.cpu.ExecOptions`.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.compiler import ir
from repro.compiler.analysis import address_taken_functions
from repro.compiler.passes.base import ModulePass
from repro.sim.cpu import PolicyViolationError, Runtime
from repro.sim.loader import Image

#: Per-check cost: load the class bit vector (typically a cache miss in
#: large programs), mask, test, and branch.
CHECK_CYCLES = 25.0


def signature_class(signature) -> str:
    """The equivalence-class key: the exact language-level type."""
    return repr(signature)


class ClangCFIPass(ModulePass):
    """Insert class-membership checks before every indirect call."""

    name = "clang-cfi"

    def run(self, module: ir.Module) -> None:
        classes: Dict[str, int] = getattr(module, "cfi_class_ids", {})
        for function in module.functions.values():
            for block in list(function.blocks):
                for instruction in list(block.instructions):
                    if not isinstance(instruction, ir.ICall):
                        continue
                    key = signature_class(instruction.signature)
                    class_id = classes.setdefault(key, len(classes))
                    block.insert_before(instruction, ir.RuntimeCall(
                        "clang_cfi_check",
                        [instruction.target, ir.Constant(class_id)]))
                    self.bump("checks")
        module.cfi_class_ids = classes  # type: ignore[attr-defined]


class ClangCFIRuntime(Runtime):
    """In-process check: abort unless the target is in the class.

    ``abort_on_violation=False`` is the continue-after-violation mode
    used by the paper's correctness and performance runs (section 5);
    violations are counted instead of aborting.
    """

    name = "clang-cfi"

    def __init__(self, abort_on_violation: bool = True) -> None:
        self._class_members: Dict[int, Set[int]] = {}
        self.abort_on_violation = abort_on_violation
        self.violations = 0

    def on_program_start(self, image: Image) -> None:
        """Build class membership from address-taken function types."""
        module = image.module
        classes: Dict[str, int] = getattr(module, "cfi_class_ids", {})
        taken = address_taken_functions(module)
        self._class_members = {class_id: set() for class_id in classes.values()}
        for function in module.functions.values():
            if function.name not in taken:
                continue
            key = signature_class(function.signature)
            if key in classes:
                self._class_members[classes[key]].add(
                    image.function_address[function.name])

    def call(self, name: str, args: List[int]) -> int:
        if name != "clang_cfi_check":
            raise KeyError(f"unknown Clang CFI runtime entry {name!r}")
        target, class_id = args[0], args[1]
        self.interpreter.process.cycles.charge_user(CHECK_CYCLES,
                                                    category="cfi-check")
        members = self._class_members.get(class_id, set())
        if target not in members:
            self.violations += 1
            if self.abort_on_violation:
                raise PolicyViolationError(
                    "clang-cfi",
                    f"indirect call target {target:#x} not in type class "
                    f"{class_id} ({len(members)} members)")
        return 0
