"""Control-flow integrity: HQ-CFI and the baseline designs."""

from repro.cfi.designs import DESIGNS, DesignConfig, get_design
from repro.cfi.hq_cfi import HQCFIPolicy
from repro.cfi.pointer_table import PointerTable

__all__ = ["DESIGNS", "DesignConfig", "HQCFIPolicy", "PointerTable",
           "get_design"]
