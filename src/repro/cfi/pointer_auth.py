"""ARM-style pointer authentication (paper section 6.2, discussion).

Apple's pointer-authentication-based CFI [75] signs pointers with a
cryptographic MAC like CCFI — but "to maximize compatibility, it omits
the address of control-flow pointers from hash computations, which
allows replay attacks.  As a workaround, it supports a separate
*discriminator* nonce; however, it uses a constant zero discriminator
for function pointers and C++ virtual table pointers."

This module implements that design so its weakness is demonstrable
next to CCFI's address-bound MACs: :class:`PointerAuthRuntime` verifies
(value, discriminator) only, so an attacker who can read one signed
pointer can *replay* it into any other slot of the same discriminator —
``tests/test_pointer_auth.py`` executes exactly that attack.  It also
cannot detect use-after-free ("due to the difficulty of hash
revocation").

The design is registered as ``arm-pa`` in the design catalogue as an
extension (it is discussed, not evaluated, in the paper).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

from repro.compiler import ir
from repro.compiler.analysis import store_defines_function_pointer
from repro.compiler.passes.base import ModulePass
from repro.compiler.types import is_function_pointer
from repro.sim.cpu import PolicyViolationError, Runtime

#: PAC computation: one QARMA-like block-cipher invocation.
PAC_CYCLES = 8.0

#: The constant discriminator Apple uses for function pointers and C++
#: vtable pointers (the compatibility concession the paper criticizes).
ZERO_DISCRIMINATOR = 0


class PointerAuthPass(ModulePass):
    """Sign pointers at stores, authenticate at loads.

    Mirrors :class:`repro.cfi.ccfi.CCFIPass`'s insertion points, but the
    runtime entry points carry a *discriminator* instead of a type id —
    and for function pointers it is always zero.
    """

    name = "arm-pa"

    def run(self, module: ir.Module) -> None:
        for function in module.functions.values():
            if function.is_declaration:
                continue
            for block in list(function.blocks):
                for instruction in list(block.instructions):
                    if isinstance(instruction, ir.Store) and \
                            store_defines_function_pointer(function,
                                                           instruction):
                        block.insert_after(instruction, ir.RuntimeCall(
                            "pa_sign",
                            [instruction.pointer, instruction.value,
                             ir.Constant(ZERO_DISCRIMINATOR)]))
                        self.bump("signs")
                    elif isinstance(instruction, ir.Load) and \
                            self._checked(function, instruction):
                        block.insert_after(instruction, ir.RuntimeCall(
                            "pa_auth",
                            [instruction.pointer, instruction,
                             ir.Constant(ZERO_DISCRIMINATOR)]))
                        self.bump("auths")

    @staticmethod
    def _checked(function: ir.Function, load: ir.Load) -> bool:
        from repro.compiler.analysis import pointer_feeds_icall
        if is_function_pointer(load.type):
            return True
        return pointer_feeds_icall(function, load)


class PointerAuthRuntime(Runtime):
    """PAC signatures keyed on (value, discriminator) — **not** address.

    The signature travels conceptually in the pointer's unused high
    bits; we model the signed-pointer set as the collection of
    (value, discriminator) pairs ever signed.  Because the slot address
    is not bound, a valid signed pointer authenticated anywhere passes —
    the replay weakness.
    """

    name = "arm-pa"

    def __init__(self, key: int = 0x517CC1B7,
                 abort_on_violation: bool = True) -> None:
        self._key = key
        self._signed: Dict[Tuple[int, int], int] = {}
        self.abort_on_violation = abort_on_violation
        self.violations = 0

    def _pac(self, value: int, discriminator: int) -> int:
        digest = hashlib.sha256(
            f"{self._key}:{value}:{discriminator}".encode()).hexdigest()
        return int(digest[:8], 16)

    def on_program_start(self, image) -> None:
        """Init arrays sign relocated global code pointers."""
        for _, value in image.initialized_code_pointers().items():
            self._signed[(value, ZERO_DISCRIMINATOR)] = \
                self._pac(value, ZERO_DISCRIMINATOR)

    def call(self, name: str, args: List[int]) -> int:
        process = self.interpreter.process
        process.cycles.charge_user(PAC_CYCLES, category="pac")
        if name == "pa_sign":
            _, value, discriminator = args
            self._signed[(value, discriminator)] = \
                self._pac(value, discriminator)
            return 0
        if name == "pa_auth":
            _, value, discriminator = args
            expected = self._signed.get((value, discriminator))
            if expected is None or \
                    expected != self._pac(value, discriminator):
                self.violations += 1
                if self.abort_on_violation:
                    raise PolicyViolationError(
                        "arm-pa",
                        f"authentication failed for value {value:#x}")
            return 0
        raise KeyError(f"unknown pointer-auth runtime entry {name!r}")
