"""HQ-CFI: the paper's fine-grained pointer-integrity policy.

Verifier-side interpretation of the ``POINTER_*`` messages (sections
4.1.3/4.1.5).  Unlike equivalence-class CFI, pointer integrity is
maximally precise: a check passes only if the loaded value equals the
most recent definition for that exact address — so any corruption of a
control-flow pointer, and any use after its invalidation (use-after-
free), is a violation.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.messages import Message, Op
from repro.core.policy import Handler, Policy, Violation
from repro.cfi.pointer_table import PointerTable

_UAF_ERROR = "use of undefined or invalidated pointer (use-after-free?)"


class HQCFIPolicy(Policy):
    """Pointer-integrity policy context for one monitored process."""

    name = "hq-cfi"

    def __init__(self) -> None:
        self.table = PointerTable()
        self.checks = 0
        self.defines = 0
        self.use_after_free_hits = 0
        self._handlers: Optional[Dict[int, Handler]] = None

    def handle(self, message: Message) -> Optional[Violation]:
        op = message.op
        if op is Op.POINTER_DEFINE:
            self.defines += 1
            self.table.define(message.arg0, message.arg1)
            return None
        if op is Op.POINTER_CHECK:
            self.checks += 1
            error = self.table.check(message.arg0, message.arg1)
            return self._violation(message, error)
        if op is Op.POINTER_CHECK_INVALIDATE:
            self.checks += 1
            error = self.table.check_invalidate(message.arg0, message.arg1)
            return self._violation(message, error)
        if op is Op.POINTER_INVALIDATE:
            self.table.invalidate(message.arg0)
            return None
        if op is Op.POINTER_BLOCK_COPY:
            self.table.block_copy(message.arg0, message.arg1, message.aux)
            return None
        if op is Op.POINTER_BLOCK_MOVE:
            self.table.block_move(message.arg0, message.arg1, message.aux)
            return None
        if op is Op.POINTER_BLOCK_INVALIDATE:
            self.table.block_invalidate(message.arg0, message.aux)
            return None
        return None

    def _violation(self, message: Message, error: Optional[str]) -> Optional[Violation]:
        if error is None:
            return None
        if "use-after-free" in error:
            self.use_after_free_hits += 1
        return Violation(message.pid, "cfi-pointer-integrity", error, message)

    def handlers(self) -> Dict[int, Handler]:
        """Per-op dispatch table with inlined define/check fast paths.

        Define and check dominate instrumented traffic (one define per
        pointer store, one check per indirect transfer), so those two
        skip the :class:`PointerTable` method-call layer and probe its
        entry dict directly.  Built lazily per instance: the closures
        bind this context's live table, so clone children build their
        own.
        """
        if self._handlers is not None:
            return self._handlers
        table = self.table
        entries = table._entries

        def define(arg0: int, arg1: int, aux: int) -> None:
            self.defines += 1
            entries[arg0] = arg1

        def check(arg0: int, arg1: int, aux: int) -> Optional[Violation]:
            self.checks += 1
            recorded = entries.get(arg0)
            if recorded == arg1 and recorded is not None:
                return None
            if recorded is None:
                self.use_after_free_hits += 1
                return Violation(0, "cfi-pointer-integrity", _UAF_ERROR)
            return Violation(0, "cfi-pointer-integrity",
                             f"pointer value mismatch: recorded "
                             f"{recorded:#x}, loaded {arg1:#x}")

        def check_invalidate(arg0: int, arg1: int,
                             aux: int) -> Optional[Violation]:
            violation = check(arg0, arg1, aux)
            if violation is None:
                del entries[arg0]
            return violation

        def invalidate(arg0: int, arg1: int, aux: int) -> None:
            entries.pop(arg0, None)

        def block_copy(arg0: int, arg1: int, aux: int) -> None:
            table.block_copy(arg0, arg1, aux)

        def block_move(arg0: int, arg1: int, aux: int) -> None:
            table.block_move(arg0, arg1, aux)

        def block_invalidate(arg0: int, arg1: int, aux: int) -> None:
            table.block_invalidate(arg0, aux)

        self._handlers = {
            int(Op.POINTER_DEFINE): define,
            int(Op.POINTER_CHECK): check,
            int(Op.POINTER_CHECK_INVALIDATE): check_invalidate,
            int(Op.POINTER_INVALIDATE): invalidate,
            int(Op.POINTER_BLOCK_COPY): block_copy,
            int(Op.POINTER_BLOCK_MOVE): block_move,
            int(Op.POINTER_BLOCK_INVALIDATE): block_invalidate,
        }
        return self._handlers

    def clone(self) -> "HQCFIPolicy":
        child = HQCFIPolicy()
        child.table = self.table.copy()
        return child

    def entry_count(self) -> int:
        return len(self.table)

    def entries_ref(self):
        return self.table._entries
