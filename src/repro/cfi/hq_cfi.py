"""HQ-CFI: the paper's fine-grained pointer-integrity policy.

Verifier-side interpretation of the ``POINTER_*`` messages (sections
4.1.3/4.1.5).  Unlike equivalence-class CFI, pointer integrity is
maximally precise: a check passes only if the loaded value equals the
most recent definition for that exact address — so any corruption of a
control-flow pointer, and any use after its invalidation (use-after-
free), is a violation.
"""

from __future__ import annotations

from typing import Optional

from repro.core.messages import Message, Op
from repro.core.policy import Policy, Violation
from repro.cfi.pointer_table import PointerTable


class HQCFIPolicy(Policy):
    """Pointer-integrity policy context for one monitored process."""

    name = "hq-cfi"

    def __init__(self) -> None:
        self.table = PointerTable()
        self.checks = 0
        self.defines = 0
        self.use_after_free_hits = 0

    def handle(self, message: Message) -> Optional[Violation]:
        op = message.op
        if op is Op.POINTER_DEFINE:
            self.defines += 1
            self.table.define(message.arg0, message.arg1)
            return None
        if op is Op.POINTER_CHECK:
            self.checks += 1
            error = self.table.check(message.arg0, message.arg1)
            return self._violation(message, error)
        if op is Op.POINTER_CHECK_INVALIDATE:
            self.checks += 1
            error = self.table.check_invalidate(message.arg0, message.arg1)
            return self._violation(message, error)
        if op is Op.POINTER_INVALIDATE:
            self.table.invalidate(message.arg0)
            return None
        if op is Op.POINTER_BLOCK_COPY:
            self.table.block_copy(message.arg0, message.arg1, message.aux)
            return None
        if op is Op.POINTER_BLOCK_MOVE:
            self.table.block_move(message.arg0, message.arg1, message.aux)
            return None
        if op is Op.POINTER_BLOCK_INVALIDATE:
            self.table.block_invalidate(message.arg0, message.aux)
            return None
        return None

    def _violation(self, message: Message, error: Optional[str]) -> Optional[Violation]:
        if error is None:
            return None
        if "use-after-free" in error:
            self.use_after_free_hits += 1
        return Violation(message.pid, "cfi-pointer-integrity", error, message)

    def clone(self) -> "HQCFIPolicy":
        child = HQCFIPolicy()
        child.table = self.table.copy()
        return child

    def entry_count(self) -> int:
        return len(self.table)
