"""Catalogue of CFI designs evaluated in the paper (Table 3).

Each :class:`DesignConfig` bundles the compiler pass pipeline, the
policy runtime, and the execution options that together realize one
design.  The HerQules variants additionally need an AppendWrite channel
and the verifier/kernel-module pair; the framework
(:mod:`repro.core.framework`) wires those in.

=================  =============================================================
name               design
=================  =============================================================
``baseline``       no instrumentation
``hq-sfestk``      HQ-CFI with safe-stack backward edges (HQ-CFI-SfeStk)
``hq-retptr``      HQ-CFI with messaged return pointers (HQ-CFI-RetPtr)
``clang-cfi``      Clang/LLVM CFI: type classes + guarded safe stack
``ccfi``           Cryptographically-Enforced CFI: keyed MACs
``cpi``            Code-Pointer Integrity: hidden safe store + safe stack
=================  =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cfi.ccfi import CCFIPass, CCFIRuntime
from repro.cfi.clang_cfi import ClangCFIPass, ClangCFIRuntime
from repro.cfi.cpi import CPIPass, CPIRuntime
from repro.compiler.passes.base import ModulePass
from repro.core.runtime import HQRuntime
from repro.ipc.base import Channel
from repro.sim.cpu import ExecOptions, Runtime


@dataclass
class DesignConfig:
    """Everything needed to build and run a program under one design."""

    name: str
    description: str
    #: Builds the pass pipeline; called fresh per compilation.
    passes: Callable[[], List[ModulePass]]
    #: Builds the runtime; HQ designs receive the AppendWrite channel.
    runtime: Callable[[Optional[Channel]], Runtime]
    #: Whether this design runs under the verifier + kernel module.
    monitored: bool = False
    safe_stack: bool = False
    safe_stack_guard: bool = False
    safe_stack_adjacent: bool = False
    fp_precision_loss: bool = False
    register_pressure_factor: float = 1.0
    #: Qualitative properties (Table 3).
    detects_use_after_free: bool = False
    precision: int = 1  # 1=coarse classes, 2=pointer integrity w/ safe
    #                     stack, 3=full pointer integrity

    def exec_options(self, **overrides) -> ExecOptions:
        options = ExecOptions(
            safe_stack=self.safe_stack,
            safe_stack_guard=self.safe_stack_guard,
            safe_stack_adjacent=self.safe_stack_adjacent,
            fp_precision_loss=self.fp_precision_loss,
            register_pressure_factor=self.register_pressure_factor,
        )
        for key, value in overrides.items():
            setattr(options, key, value)
        return options


def _hq_passes(retptr: bool) -> Callable[[], List[ModulePass]]:
    def build() -> List[ModulePass]:
        from repro.compiler.passes.cfi_finalize import CFIFinalLoweringPass
        from repro.compiler.passes.cfi_initial import CFIInitialLoweringPass
        from repro.compiler.passes.devirtualize import DevirtualizationPass
        from repro.compiler.passes.elision import MessageElisionPass
        from repro.compiler.passes.retptr import ReturnPointerPass
        from repro.compiler.passes.stlf import StoreToLoadForwardingPass
        from repro.compiler.passes.syscall_sync import SyscallSyncPass

        passes: List[ModulePass] = [
            CFIInitialLoweringPass(),
            DevirtualizationPass(),
            StoreToLoadForwardingPass(),
            MessageElisionPass(),
            CFIFinalLoweringPass(),
        ]
        if retptr:
            passes.append(ReturnPointerPass())
        passes.append(SyscallSyncPass())
        return passes
    return build


DESIGNS: Dict[str, DesignConfig] = {
    "baseline": DesignConfig(
        name="baseline",
        description="Uninstrumented baseline",
        passes=lambda: [],
        runtime=lambda channel: Runtime(),
    ),
    "hq-sfestk": DesignConfig(
        name="hq-sfestk",
        description="HQ-CFI-SfeStk: pointer-integrity forward edges via "
                    "AppendWrite, safe-stack backward edges",
        passes=_hq_passes(retptr=False),
        runtime=lambda channel: HQRuntime(channel),
        monitored=True,
        safe_stack=True,
        safe_stack_guard=True,
        detects_use_after_free=True,
        precision=2,
    ),
    "hq-retptr": DesignConfig(
        name="hq-retptr",
        description="HQ-CFI-RetPtr: pointer integrity for forward AND "
                    "backward edges via AppendWrite",
        passes=_hq_passes(retptr=True),
        runtime=lambda channel: HQRuntime(channel),
        monitored=True,
        safe_stack=False,
        detects_use_after_free=True,
        precision=3,
    ),
    "clang-cfi": DesignConfig(
        name="clang-cfi",
        description="Clang/LLVM CFI: language-level type classes, "
                    "guard-paged safe stack",
        passes=lambda: [ClangCFIPass()],
        runtime=lambda channel: ClangCFIRuntime(),
        safe_stack=True,
        safe_stack_guard=True,
        precision=1,
    ),
    "ccfi": DesignConfig(
        name="ccfi",
        description="CCFI: per-pointer cryptographic MACs in reserved "
                    "XMM registers",
        passes=lambda: [CCFIPass()],
        runtime=lambda channel: CCFIRuntime(),
        fp_precision_loss=True,
        register_pressure_factor=1.45,
        precision=3,
    ),
    "arm-pa": DesignConfig(
        name="arm-pa",
        description="ARM pointer authentication (Apple-style): PAC "
                    "signatures without address binding — extension, "
                    "discussed in section 6.2",
        passes=lambda: [_pa_pass()],
        runtime=lambda channel: _pa_runtime(),
        safe_stack=True,
        precision=2,
    ),
    "cpi": DesignConfig(
        name="cpi",
        description="CPI: safe store + safe stack behind information "
                    "hiding",
        passes=lambda: [CPIPass()],
        runtime=lambda channel: CPIRuntime(),
        safe_stack=True,
        safe_stack_adjacent=True,
        precision=2,
    ),
}


def _pa_pass():
    from repro.cfi.pointer_auth import PointerAuthPass
    return PointerAuthPass()


def _pa_runtime():
    from repro.cfi.pointer_auth import PointerAuthRuntime
    return PointerAuthRuntime()


def get_design(name: str) -> DesignConfig:
    """Look up a design configuration by name."""
    key = name.lower()
    if key not in DESIGNS:
        raise KeyError(f"unknown design {name!r}; choose from {sorted(DESIGNS)}")
    return DESIGNS[key]
