"""CCFI baseline: Cryptographically-Enforced CFI [74].

Every control-flow pointer store computes a message authentication code
(one AES round keyed by a secret held in reserved XMM registers) over
the pointer's *address*, *value*, and *static type*; every load
recomputes and compares.  An attacker who overwrites a pointer cannot
forge its MAC without the key, so all RIPE corruptions are caught
(Table 5: zero successful exploits).  The design costs dearly, though:

* **performance** — a MAC on every pointer store and load (~49%
  relative performance in Figure 5), modelled by :data:`MAC_CYCLES`
  charged per operation;
* **false positives** — the MAC binds the *static type*, so legal type
  casts/decay change the type id between store and check and the MAC
  mismatches (29 of 48 benchmarks, Table 4);
* **compatibility** — eleven XMM registers are reserved for the key,
  breaking the platform calling convention.  Functions passing more
  than :data:`MAX_FLOAT_ARGS` floating-point arguments cannot be
  compiled (modelled as a :class:`CompilationError`), and register
  pressure forces x87 usage whose reduced precision corrupts numeric
  output (``ExecOptions.fp_precision_loss``);
* **no use-after-free detection** — MACs are never revoked, so a stale
  (address, value, type) triple still verifies after ``free``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from repro.compiler import ir
from repro.compiler.analysis import store_defines_function_pointer
from repro.compiler.passes.base import ModulePass
from repro.compiler.types import is_function_pointer
from repro.sim.cpu import PolicyViolationError, Runtime

#: AES-round MAC plus spill traffic from the reserved registers.
MAC_CYCLES = 95.0
#: XMM registers left for the ABI after CCFI reserves eleven.
MAX_FLOAT_ARGS = 4


class CompilationError(Exception):
    """The instrumentation pass could not compile the program."""


def _type_id(t) -> int:
    """Stable small integer for a static type."""
    return int(hashlib.sha256(repr(t).encode()).hexdigest()[:8], 16)


class CCFIPass(ModulePass):
    """Insert MAC computation/verification around pointer accesses."""

    name = "ccfi"

    def run(self, module: ir.Module) -> None:
        self._check_abi(module)
        from repro.compiler.analysis import needs_return_pointer_protection
        for function in module.functions.values():
            if function.is_declaration:
                continue
            if needs_return_pointer_protection(function):
                # CCFI MACs return addresses too, with a per-frame nonce
                # against replay [74]; define in prologue, verify in the
                # epilogue before the return uses the slot.
                entry = function.entry
                index = 0
                while index < len(entry.instructions) and \
                        isinstance(entry.instructions[index], ir.Phi):
                    index += 1
                entry.insert(index, ir.RuntimeCall("ccfi_ret_define", []))
                for block in function.blocks:
                    terminator = block.terminator
                    if isinstance(terminator, ir.Ret):
                        block.insert_before(terminator, ir.RuntimeCall(
                            "ccfi_ret_check", []))
                self.bump("ret-macs")
            for block in list(function.blocks):
                for instruction in list(block.instructions):
                    if isinstance(instruction, ir.Store) and \
                            store_defines_function_pointer(function, instruction):
                        pointee = instruction.value.type
                        block.insert_after(instruction, ir.RuntimeCall(
                            "ccfi_mac_store",
                            [instruction.pointer, instruction.value,
                             ir.Constant(_type_id(pointee))]))
                        self.bump("mac-stores")
                    elif isinstance(instruction, ir.Load) and \
                            self._load_is_checked(function, instruction):
                        block.insert_after(instruction, ir.RuntimeCall(
                            "ccfi_mac_check",
                            [instruction.pointer, instruction,
                             ir.Constant(_type_id(instruction.type))]))
                        self.bump("mac-checks")

    @staticmethod
    def _load_is_checked(function: ir.Function, load: ir.Load) -> bool:
        """CCFI verifies on every load of a control-flow pointer; loads
        whose value reaches an indirect call are checked even when the
        static type has decayed (the MAC still binds the *static* type
        at the load — the source of CCFI's type-mismatch FPs)."""
        from repro.compiler.analysis import pointer_feeds_icall
        if is_function_pointer(load.type):
            return True
        return pointer_feeds_icall(function, load)

    def _check_abi(self, module: ir.Module) -> None:
        """Reject programs needing more XMM argument registers than the
        reserved-key scheme leaves available."""
        from repro.compiler.types import FloatType
        for function in module.functions.values():
            float_args = sum(1 for t in function.signature.params
                             if isinstance(t, FloatType))
            if float_args > MAX_FLOAT_ARGS:
                raise CompilationError(
                    f"CCFI: function {function.name} passes {float_args} "
                    f"floating-point arguments but only {MAX_FLOAT_ARGS} "
                    f"XMM registers remain after key reservation")


class CCFIRuntime(Runtime):
    """Keyed-MAC shadow table.

    The table models the in-memory adjacent MAC slots: the attacker can
    overwrite pointers but cannot compute a matching MAC without the
    XMM-resident key, and we model the key as unreachable (the threat
    model excludes register access).
    """

    name = "ccfi"

    def __init__(self, key: int = 0x5F3759DF,
                 abort_on_violation: bool = True) -> None:
        self._key = key
        self._macs: Dict[int, int] = {}
        self.abort_on_violation = abort_on_violation
        self.violations = 0

    def on_program_start(self, image) -> None:
        """Global constructors MAC the relocated code pointers in
        writable globals (matching the instrumented init arrays).

        Array-typed globals MAC each element with the *element* type —
        the type later loads of individual slots carry."""
        from repro.compiler import ir as _ir
        from repro.compiler.types import ArrayType
        from repro.sim.memory import WORD_SIZE
        for variable in image.module.globals.values():
            if variable.const or variable.initializer is None:
                continue
            value_type = variable.value_type
            slot_type = (value_type.element
                         if isinstance(value_type, ArrayType)
                         else value_type)
            for i, value in enumerate(variable.initializer):
                if isinstance(value, _ir.FunctionRef):
                    slot = (variable.address or 0) + i * WORD_SIZE
                    addr = image.function_address[value.function.name]
                    self._macs[slot] = self._mac(
                        slot, addr, _type_id(slot_type))

    def _violate(self, detail: str) -> int:
        self.violations += 1
        if self.abort_on_violation:
            raise PolicyViolationError("ccfi", detail)
        return 0

    def _mac(self, address: int, value: int, type_id: int) -> int:
        digest = hashlib.sha256(
            f"{self._key}:{address}:{value}:{type_id}".encode()).hexdigest()
        return int(digest[:16], 16)

    def call(self, name: str, args: List[int]) -> int:
        process = self.interpreter.process
        process.cycles.charge_user(MAC_CYCLES, category="mac")
        if name in ("ccfi_ret_define", "ccfi_ret_check"):
            return self._ret_mac(name)
        address, value, type_id = args[0], args[1], args[2]
        if name == "ccfi_mac_store":
            self._macs[address] = self._mac(address, value, type_id)
            return 0
        if name == "ccfi_mac_check":
            expected = self._macs.get(address)
            actual = self._mac(address, value, type_id)
            if expected is None or expected != actual:
                return self._violate(
                    f"MAC mismatch for pointer at {address:#x}")
            return 0
        raise KeyError(f"unknown CCFI runtime entry {name!r}")

    #: Type-id slot for return-address MACs (distinct from data types).
    _RET_TYPE = 0x52455430  # "RET0"

    def _ret_mac(self, name: str) -> int:
        """MAC the current frame's return-address slot."""
        interpreter = self.interpreter
        if not interpreter.call_stack:
            return 0
        slot, _ = interpreter.call_stack[-1]
        value = interpreter.process.memory.load(slot)
        if name == "ccfi_ret_define":
            self._macs[slot] = self._mac(slot, value, self._RET_TYPE)
            return 0
        expected = self._macs.get(slot)
        if expected is None or expected != self._mac(slot, value, self._RET_TYPE):
            return self._violate(f"return-address MAC mismatch at {slot:#x}")
        return 0
