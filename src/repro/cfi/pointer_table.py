"""Verifier-side pointer-value table for HQ-CFI (section 4.1).

The table maps *pointer addresses* to their last defined *values* —
each entry is the 16-byte pointer/value pair the paper counts in its
memory-overhead metric (section 5.4).  All block operations implement
the exact semantics of section 4.1.3, including overlap handling and
invalidation of pre-existing destination pointers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple


class PointerTable:
    """Address → value map with block operations."""

    def __init__(self) -> None:
        self._entries: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: int) -> bool:
        return address in self._entries

    def get(self, address: int) -> Optional[int]:
        return self._entries.get(address)

    def define(self, address: int, value: int) -> None:
        """Pointer-Define: initialize/overwrite the entry at ``address``."""
        self._entries[address] = value

    def check(self, address: int, value: int) -> Optional[str]:
        """Pointer-Check: return an error string if the check fails.

        A missing entry means the pointer was never defined or was
        invalidated — i.e. corruption or a use-after-free.
        """
        recorded = self._entries.get(address)
        if recorded is None:
            return "use of undefined or invalidated pointer (use-after-free?)"
        if recorded != value:
            return (f"pointer value mismatch: recorded {recorded:#x}, "
                    f"loaded {value:#x}")
        return None

    def invalidate(self, address: int) -> None:
        """Pointer-Invalidate: drop the entry (no-op when absent)."""
        self._entries.pop(address, None)

    def check_invalidate(self, address: int, value: int) -> Optional[str]:
        """Pointer-Check-Invalidate (backward edges, section 4.1.5)."""
        error = self.check(address, value)
        if error is None:
            self.invalidate(address)
        return error

    def _in_range(self, start: int, size: int) -> List[Tuple[int, int]]:
        return [(address, value) for address, value in self._entries.items()
                if start <= address < start + size]

    def block_copy(self, src: int, dst: int, size: int) -> int:
        """Pointer-Block-Copy: ranges may intersect; pre-existing
        pointers in the destination are invalidated.  Returns the number
        of pointers copied."""
        moved = self._in_range(src, size)
        # Invalidate pre-existing destination entries first, except the
        # slots about to be written (they are overwritten anyway).
        for address, _ in self._in_range(dst, size):
            del self._entries[address]
        for address, value in moved:
            self._entries[dst + (address - src)] = value
        return len(moved)

    def block_move(self, src: int, dst: int, size: int) -> int:
        """Pointer-Block-Move: disjoint ranges; source entries are
        removed (the realloc optimization).  Returns pointers moved."""
        if src < dst + size and dst < src + size:
            # Intersecting ranges violate the message contract; fall
            # back to copy semantics to stay safe.
            return self.block_copy(src, dst, size)
        moved = self._in_range(src, size)
        for address, _ in self._in_range(dst, size):
            del self._entries[address]
        for address, value in moved:
            del self._entries[address]
            self._entries[dst + (address - src)] = value
        return len(moved)

    def block_invalidate(self, start: int, size: int) -> int:
        """Pointer-Block-Invalidate: drop every entry in the range
        (free semantics).  Returns the number invalidated."""
        doomed = self._in_range(start, size)
        for address, _ in doomed:
            del self._entries[address]
        return len(doomed)

    def items(self) -> Iterable[Tuple[int, int]]:
        return self._entries.items()

    def copy(self) -> "PointerTable":
        clone = PointerTable()
        clone._entries = dict(self._entries)
        return clone
