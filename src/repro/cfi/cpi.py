"""CPI baseline: Code-Pointer Integrity [62, 63].

CPI *relocates* control-flow pointers into an in-process *safe store*
(and return addresses onto a safe stack): indirect calls load their
target from the safe store, so corrupting the original memory slot is
harmless.  The safe region is protected by information hiding — a
hidden address in a huge sparsely-mapped region — which disclosure
attacks defeat (Table 5: 10 successful exploits per overflow origin).

The paper found the released prototype "fails to redirect all loads and
stores of each control-flow pointer to the safe store, causing infinite
loops and crashing upon execution of NULL pointers" (section 5.1).
That emerges mechanically here: the pass cannot redirect stores through
pointers it cannot track (dynamically-indexed or explicitly ``aliased``
paths), so a later safe-store load misses and yields 0 — an indirect
call to NULL.  ``fixed_bugs=False`` additionally reproduces the bugs
the authors had to fix (no safe-store update after ``realloc``/
``free``, unguarded safe-store accesses).

Use-after-free is *not* detected: the safe store never revokes entries.
"""

from __future__ import annotations

from typing import Dict, List

from repro.compiler import ir
from repro.compiler.analysis import store_defines_function_pointer
from repro.compiler.passes.base import ModulePass
from repro.compiler.types import I64, is_function_pointer
from repro.sim.cpu import Runtime

#: Safe-store access: address translation into the hidden region plus a
#: load/store that typically misses cache (the 4 TB sparse region).
ACCESS_CYCLES = 8.0


def _trackable(pointer: ir.Value) -> bool:
    """Whether CPI's pointer analysis can redirect accesses via
    ``pointer`` to the safe store.  Dynamic indexing and values marked
    ``aliased`` by the front-end (standing in for may-alias results the
    prototype mishandles) are not trackable."""
    if pointer.meta.get("aliased") if isinstance(pointer, ir.Instruction) else False:
        return False
    if isinstance(pointer, ir.Gep) and pointer.index is not None \
            and not isinstance(pointer.index, ir.Constant):
        return False
    return True


class CPIPass(ModulePass):
    """Redirect function-pointer accesses to the safe store."""

    name = "cpi"

    def run(self, module: ir.Module) -> None:
        for function in module.functions.values():
            if function.is_declaration:
                continue
            for block in list(function.blocks):
                for instruction in list(block.instructions):
                    if isinstance(instruction, ir.Store) and \
                            store_defines_function_pointer(function, instruction):
                        if not _trackable(instruction.pointer):
                            # The missed-redirect bug: this store never
                            # reaches the safe store.
                            self.bump("stores-missed")
                            continue
                        block.insert_after(instruction, ir.RuntimeCall(
                            "cpi_store",
                            [instruction.pointer, instruction.value]))
                        self.bump("stores-redirected")
                    elif isinstance(instruction, ir.Load) and \
                            is_function_pointer(instruction.type):
                        safe_load = ir.RuntimeCall(
                            "cpi_load", [instruction.pointer], I64,
                            name=f"{instruction.name}.safe")
                        block.insert_after(instruction, safe_load)
                        self._redirect_uses(function, instruction, safe_load)
                        self.bump("loads-redirected")
            # realloc/free must move/drop safe-store entries; the fixed
            # version hooks them (the released prototype did not).
            for block in list(function.blocks):
                for instruction in list(block.instructions):
                    if isinstance(instruction, ir.Realloc):
                        block.insert_after(instruction, ir.RuntimeCall(
                            "cpi_realloc_hook",
                            [instruction.pointer, instruction,
                             instruction.size]))
                    elif isinstance(instruction, ir.Free):
                        block.insert_before(instruction, ir.RuntimeCall(
                            "cpi_free_hook", [instruction.pointer]))

    def _redirect_uses(self, function: ir.Function, load: ir.Load,
                       safe_load: ir.RuntimeCall) -> None:
        """Point indirect-call targets at the safe-store value."""
        for instruction in function.instructions():
            if instruction is safe_load:
                continue
            if isinstance(instruction, ir.ICall) and instruction.target is load:
                instruction.target = safe_load


class CPIRuntime(Runtime):
    """The safe store / safe stack runtime.

    ``fixed_bugs`` selects between the prototype as released (False)
    and the version with the paper's correctness fixes applied (True,
    the configuration evaluated in section 5).
    """

    name = "cpi"

    def __init__(self, fixed_bugs: bool = True) -> None:
        self.fixed_bugs = fixed_bugs
        self._safe_store: Dict[int, int] = {}
        self.violations = 0
        #: Exposed for the disclosure-attack model: the hidden region's
        #: runtime handle.  Real attackers obtain it by leaking a
        #: pointer into the region.
        self.disclosed_handle = self._safe_store

    def call(self, name: str, args: List[int]) -> int:
        process = self.interpreter.process
        process.cycles.charge_user(ACCESS_CYCLES, category="safe-store")
        if name == "cpi_store":
            self._safe_store[args[0]] = args[1]
            return 0
        if name == "cpi_load":
            value = self._safe_store.get(args[0])
            if value is None:
                # Missed redirect: the prototype returns a NULL entry,
                # and the subsequent indirect call crashes (section 5.1).
                return 0
            return value
        if name == "cpi_realloc_hook":
            old, new, size = args[0], args[1], args[2]
            if self.fixed_bugs and old != new:
                moved = {a: v for a, v in self._safe_store.items()
                         if old <= a < old + size}
                for address, value in moved.items():
                    del self._safe_store[address]
                    self._safe_store[new + (address - old)] = value
            return 0
        if name == "cpi_free_hook":
            # CPI never revokes safe-store entries on free: stale values
            # persist, which is precisely why it cannot detect
            # use-after-free on control-flow pointers (Table 3) — a
            # stale pointer keeps "working" through the safe store.
            return 0
        raise KeyError(f"unknown CPI runtime entry {name!r}")

    def on_program_start(self, image) -> None:
        """Startup redirection: relocated code pointers in writable
        globals enter the safe store (CPI instruments init arrays)."""
        for slot, value in image.initialized_code_pointers().items():
            self._safe_store[slot] = value

    def entry_count(self) -> int:
        return len(self._safe_store)
