"""Benchmark profiles for the 48 performance benchmarks (section 5).

The paper evaluates SPEC CPU2006 (19 C/C++ benchmarks), SPEC CPU2017
(28 C/C++ rate+speed benchmarks), and the NGINX web server — 48 in
total (Table 4).  We cannot run the real suites, so each benchmark is
modelled by a :class:`BenchmarkProfile`: a synthetic instruction mix
whose *event densities* (indirect calls, function-pointer writes,
protected calls, block memory operations, heap traffic, system calls
per thousand iterations) characterize how often each benchmark performs
the operations the CFI designs instrument.  Densities are chosen to
reflect each benchmark's character (C++ template/virtual-call heavy vs
numeric C kernels) so that the *shape* of Figures 3-5 — which
benchmarks suffer, which designs win — emerges from execution rather
than being asserted.

Correctness-relevant code patterns (Table 4) are expressed as feature
flags, each of which makes the generator emit a specific construct:

* ``fnptr_type_cast`` — povray-style call through a cast pointer type:
  a false positive for type-matching designs (Clang CFI, CCFI);
* ``blockop_fnptr_copy`` — function pointers moved by ``memcpy``:
  breaks address-keyed MACs (CCFI) and unredirected safe stores (CPI);
  HerQules handles it via ``Pointer-Block-Copy`` + the allowlist;
* ``fnptr_int_roundtrip`` — a function pointer stored as an integer and
  reloaded: a CCFI-only type-id mismatch;
* ``ccfi_float_div_hazard`` — float-derived divisor that becomes zero
  under CCFI's x87 precision loss (a runtime crash);
* ``float_heavy`` — float results reach program output (precision loss
  turns into *invalid output*);
* ``old_clang_bug`` — miscompiled by the legacy Clang 3.x toolchain
  that CCFI/CPI are built on (fails even on their baselines);
* ``static_init_uaf`` — the genuine omnetpp static-initialization-order
  use-after-free on a control-flow pointer that HQ-CFI discovered
  (section 5.2); a *true* positive;
* ``decayed_blockop`` — composite holding function pointers passed
  inter-procedurally as a decayed raw pointer, defeating strict subtype
  checking; the generator also puts the function on the block-op
  allowlist (section 4.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class BenchmarkProfile:
    """Synthetic stand-in for one SPEC/NGINX benchmark."""

    name: str
    suite: str                 # "CPU2006" | "CPU2017" | "NGINX"
    language: str              # "C" | "C++"
    #: Loop iterations for the *ref* input; *train* runs a fraction.
    iterations: int = 120
    #: Plain ALU work per iteration (the compute backbone).
    compute_ops: int = 40
    #: Float operations per iteration.
    float_ops: int = 0
    #: Events per 1000 iterations.
    icalls_per_k: int = 0          # indirect calls (checked loads)
    fnptr_writes_per_k: int = 0    # function-pointer stores (defines)
    protected_calls_per_k: int = 0  # calls to retptr-protected functions
    block_ops_per_k: int = 0       # memcpy over composites w/ pointers
    heap_ops_per_k: int = 0        # malloc/free pairs
    syscalls_per_k: int = 8        # write-ish system calls
    #: Correctness feature flags (see module docstring).
    flags: Tuple[str, ...] = ()

    def has(self, flag: str) -> bool:
        return flag in self.flags

    @property
    def is_cpp(self) -> bool:
        return self.language == "C++"


#: Calibration scales applied uniformly to every profile.  The raw
#: per-benchmark numbers in the table below encode each benchmark's
#: *relative* character; these constants set the absolute event-to-work
#: ratio so that the AppendWrite-FPGA sweep (whose per-send cost is
#: pinned by Table 2 at 102 ns) lands at its measured geometric mean —
#: the other configurations then follow from their own Table 2 costs.
COMPUTE_SCALE = 4
FORWARD_EDGE_SCALE = 0.40   # indirect calls / fn-ptr writes
PROTECTED_CALL_SCALE = 2.0  # retptr-protected call frequency


def _p(name: str, suite: str, lang: str, *, it=120, comp=40, flt=0,
       icall=0, fnw=0, prot=0, blk=0, heap=0, sys=8,
       flags: Tuple[str, ...] = ()) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name, suite=suite, language=lang, iterations=it,
        compute_ops=comp * COMPUTE_SCALE, float_ops=flt,
        icalls_per_k=round(icall * FORWARD_EDGE_SCALE),
        fnptr_writes_per_k=round(fnw * FORWARD_EDGE_SCALE),
        protected_calls_per_k=round(prot * PROTECTED_CALL_SCALE),
        block_ops_per_k=blk, heap_ops_per_k=heap, syscalls_per_k=sys,
        flags=flags)


#: The 48 benchmarks of Table 4.  Densities follow each benchmark's
#: published character; flags implement the Table 4 failure taxonomy.
PROFILES: List[BenchmarkProfile] = [
    # ---- SPEC CPU2006 (19) --------------------------------------------------
    _p("400.perlbench", "CPU2006", "C", comp=35, icall=700, fnw=500,
       prot=900, heap=60, flags=("fnptr_type_cast",)),
    _p("401.bzip2", "CPU2006", "C", comp=60, prot=300),
    _p("403.gcc", "CPU2006", "C", comp=30, icall=800, fnw=600, prot=1000,
       heap=80, flags=("fnptr_type_cast", "ccfi_float_div_hazard")),
    _p("429.mcf", "CPU2006", "C", comp=70, icall=20, fnw=15, prot=200,
       flags=("fnptr_int_roundtrip",)),
    _p("433.milc", "CPU2006", "C", comp=50, flt=25, prot=150),
    _p("444.namd", "CPU2006", "C++", comp=55, flt=30, prot=80),
    _p("445.gobmk", "CPU2006", "C", comp=40, icall=400, fnw=300, prot=700,
       flags=("fnptr_type_cast",)),
    _p("447.dealII", "CPU2006", "C++", comp=35, flt=20, icall=500, fnw=350,
       prot=600, blk=40, heap=70,
       flags=("blockop_fnptr_copy", "ccfi_float_div_hazard",
              "decayed_blockop")),
    _p("450.soplex", "CPU2006", "C++", comp=40, flt=25, icall=300, fnw=200,
       prot=450, blk=30, heap=50,
       flags=("blockop_fnptr_copy", "ccfi_float_div_hazard")),
    _p("453.povray", "CPU2006", "C++", comp=35, flt=30, icall=600, fnw=400,
       prot=800, heap=60,
       flags=("fnptr_type_cast", "ccfi_float_div_hazard")),
    _p("456.hmmer", "CPU2006", "C", comp=65, prot=120),
    _p("458.sjeng", "CPU2006", "C", comp=45, icall=350, fnw=250, prot=600,
       flags=("fnptr_type_cast",)),
    _p("462.libquantum", "CPU2006", "C", comp=75, prot=60),
    _p("464.h264ref", "CPU2006", "C", comp=40, flt=12, icall=900, fnw=700,
       prot=500, flags=("fnptr_type_cast", "float_heavy", "old_clang_bug")),
    _p("470.lbm", "CPU2006", "C", comp=85, flt=35, icall=0, fnw=0, prot=30),
    _p("471.omnetpp", "CPU2006", "C++", comp=30, flt=10, icall=700, fnw=500,
       prot=900, blk=50, heap=90,
       flags=("blockop_fnptr_copy", "float_heavy", "static_init_uaf",
              "decayed_blockop")),
    _p("473.astar", "CPU2006", "C++", comp=55, icall=60, fnw=40, prot=250,
       heap=40),
    _p("482.sphinx3", "CPU2006", "C", comp=50, flt=20, icall=80, fnw=60,
       prot=300),
    _p("483.xalancbmk", "CPU2006", "C++", it=220, comp=25, flt=10, icall=1000, fnw=700,
       prot=1100, blk=60, heap=100,
       flags=("blockop_fnptr_copy", "float_heavy", "decayed_blockop")),
    # ---- SPEC CPU2017 rate (16) ----------------------------------------------
    _p("500.perlbench_r", "CPU2017", "C", comp=35, icall=700, fnw=500,
       prot=900, heap=60, flags=("fnptr_type_cast",)),
    _p("502.gcc_r", "CPU2017", "C", comp=30, icall=800, fnw=600, prot=1000,
       heap=80, flags=("fnptr_type_cast", "ccfi_float_div_hazard")),
    _p("505.mcf_r", "CPU2017", "C", comp=70, icall=20, fnw=15, prot=200,
       flags=("fnptr_int_roundtrip",)),
    _p("508.namd_r", "CPU2017", "C++", comp=55, flt=30, prot=80),
    _p("510.parest_r", "CPU2017", "C++", comp=35, flt=20, icall=450, fnw=300,
       prot=550, blk=35, heap=60,
       flags=("blockop_fnptr_copy", "ccfi_float_div_hazard")),
    _p("511.povray_r", "CPU2017", "C++", comp=35, flt=30, icall=600, fnw=400,
       prot=800, heap=60,
       flags=("fnptr_type_cast", "ccfi_float_div_hazard")),
    _p("519.lbm_r", "CPU2017", "C", comp=85, flt=35, icall=0, fnw=0, prot=30),
    _p("520.omnetpp_r", "CPU2017", "C++", comp=30, flt=10, icall=700, fnw=500,
       prot=900, blk=50, heap=90,
       flags=("blockop_fnptr_copy", "float_heavy", "static_init_uaf",
              "decayed_blockop")),
    _p("523.xalancbmk_r", "CPU2017", "C++", comp=25, flt=10, icall=1000, fnw=700,
       prot=1100, blk=60, heap=100,
       flags=("blockop_fnptr_copy", "float_heavy")),
    _p("525.x264_r", "CPU2017", "C", comp=45, icall=500, fnw=400, prot=450,
       flags=("fnptr_type_cast", "ccfi_float_div_hazard")),
    _p("526.blender_r", "CPU2017", "C++", comp=35, flt=25, icall=550,
       fnw=380, prot=700, blk=45, heap=70,
       flags=("blockop_fnptr_copy", "ccfi_float_div_hazard")),
    _p("531.deepsjeng_r", "CPU2017", "C++", comp=45, icall=350, fnw=250,
       prot=600, flags=("fnptr_type_cast",)),
    _p("538.imagick_r", "CPU2017", "C", comp=60, flt=30, prot=200),
    _p("541.leela_r", "CPU2017", "C++", comp=40, flt=10, icall=400, fnw=280,
       prot=650, blk=30, heap=60,
       flags=("blockop_fnptr_copy", "float_heavy")),
    _p("544.nab_r", "CPU2017", "C", comp=60, flt=25, prot=150),
    _p("557.xz_r", "CPU2017", "C", comp=65, prot=250),
    # ---- SPEC CPU2017 speed (12) -----------------------------------------------
    _p("600.perlbench_s", "CPU2017", "C", comp=35, icall=700, fnw=500,
       prot=900, heap=60, flags=("fnptr_type_cast",)),
    _p("602.gcc_s", "CPU2017", "C", comp=30, icall=800, fnw=600, prot=1200,
       heap=80, flags=("fnptr_type_cast", "ccfi_float_div_hazard")),
    _p("605.mcf_s", "CPU2017", "C", comp=70, icall=20, fnw=15, prot=200),
    _p("619.lbm_s", "CPU2017", "C", comp=85, flt=35, icall=0, fnw=0, prot=30),
    _p("620.omnetpp_s", "CPU2017", "C++", comp=30, flt=10, icall=700, fnw=500,
       prot=900, blk=50, heap=90,
       flags=("blockop_fnptr_copy", "float_heavy")),
    _p("623.xalancbmk_s", "CPU2017", "C++", comp=25, flt=10, icall=1000, fnw=700,
       prot=1100, blk=60, heap=100,
       flags=("blockop_fnptr_copy", "float_heavy")),
    _p("625.x264_s", "CPU2017", "C", comp=45, flt=12, icall=500, fnw=400,
       prot=450, flags=("fnptr_type_cast", "float_heavy", "old_clang_bug")),
    _p("631.deepsjeng_s", "CPU2017", "C++", comp=45, icall=350, fnw=250,
       prot=600, flags=("fnptr_type_cast",)),
    _p("638.imagick_s", "CPU2017", "C", comp=60, flt=30, prot=200),
    _p("641.leela_s", "CPU2017", "C++", comp=40, icall=400, fnw=280,
       prot=650, blk=30, heap=60,
       flags=("blockop_fnptr_copy",)),
    _p("644.nab_s", "CPU2017", "C", comp=60, flt=25, prot=150),
    _p("657.xz_s", "CPU2017", "C", comp=65, icall=25, fnw=18, prot=250),
    # ---- NGINX (1) -------------------------------------------------------------
    _p("nginx", "NGINX", "C", it=150, comp=30, icall=600, fnw=300, prot=260,
       blk=80, heap=80, sys=700),
]

PROFILE_BY_NAME: Dict[str, BenchmarkProfile] = {p.name: p for p in PROFILES}

#: Fraction of *ref* iterations used for the *train* input (Figure 4).
TRAIN_FRACTION = 0.4
#: Event-density multiplier for *train*: the paper observes ~9 points
#: more overhead on train than ref because "ref is much longer and
#: executes a different workload [so] the overhead of each AppendWrite
#: instruction has less impact" (section 5.3.1) — i.e. train spends a
#: larger fraction of its time in instrumented operations.
TRAIN_DENSITY_FACTOR = 2.3


def spec_profiles() -> List[BenchmarkProfile]:
    """The 47 SPEC benchmarks (everything but NGINX)."""
    return [p for p in PROFILES if p.suite != "NGINX"]


def get_profile(name: str) -> BenchmarkProfile:
    if name not in PROFILE_BY_NAME:
        raise KeyError(f"unknown benchmark {name!r}")
    return PROFILE_BY_NAME[name]
