"""Synthetic benchmark generator: profiles → executable IR programs.

Each :class:`~repro.workloads.profiles.BenchmarkProfile` becomes a real
program for the simulated machine: a main loop whose body performs the
profile's instruction mix (ALU/float compute, indirect calls through
writable function-pointer slots, calls into return-pointer-protected
helpers, block memory operations over pointer-bearing composites, heap
traffic, and system calls).  The program accumulates a checksum and
writes it out at the end, so output comparison against the baseline
detects *invalid results* (Table 4).

Feature flags inject the specific code patterns that differentiate the
CFI designs' correctness — see :mod:`repro.workloads.profiles` for the
taxonomy.  ``compiler="legacy"`` models building with the Clang 3.x
toolchains CCFI/CPI require: profiles flagged ``old_clang_bug`` get a
genuinely miscompiled late-iteration memory access.
"""

from __future__ import annotations

from typing import Callable

from repro.compiler import ir
from repro.compiler.builder import IRBuilder
from repro.compiler.types import ArrayType, I64, StructType, func, ptr
from repro.workloads.profiles import (
    BenchmarkProfile,
    TRAIN_DENSITY_FACTOR,
    TRAIN_FRACTION,
)

#: Fixed-point scale used by the float model (matches the interpreter).
FP_ONE = 1 << 16

#: Handler signature used for the benchmark's indirect calls.
HANDLER_SIG = func(I64, [I64])
#: The deliberately different signature used by the type-cast pattern.
CAST_SIG = func(I64, [I64, I64])


def build_module(profile: BenchmarkProfile, dataset: str = "ref",
                 compiler: str = "modern") -> ir.Module:
    """Build a fresh program module for ``profile``.

    ``dataset`` selects the input size (``ref`` or ``train``);
    ``compiler`` selects the toolchain generation (``modern`` = Clang
    10, ``legacy`` = the Clang 3.x that CCFI/CPI are based on).
    """
    if dataset not in ("ref", "train"):
        raise ValueError(f"unknown dataset {dataset!r}")
    if compiler not in ("modern", "legacy"):
        raise ValueError(f"unknown compiler {compiler!r}")
    iterations = profile.iterations
    if dataset == "train":
        iterations = max(10, int(iterations * TRAIN_FRACTION))
        profile = _densify(profile, TRAIN_DENSITY_FACTOR)

    module = ir.Module(profile.name)
    _emit_handlers(module, profile)
    _emit_protected_helper(module)
    _emit_main(module, profile, iterations, compiler)
    module.verify()
    return module


def _densify(profile: BenchmarkProfile, factor: float) -> BenchmarkProfile:
    """The *train* workload variant: same character, denser events."""
    import dataclasses
    return dataclasses.replace(
        profile,
        icalls_per_k=round(profile.icalls_per_k * factor),
        fnptr_writes_per_k=round(profile.fnptr_writes_per_k * factor),
        protected_calls_per_k=round(profile.protected_calls_per_k * factor),
        block_ops_per_k=round(profile.block_ops_per_k * factor),
    )


def _emit_handlers(module: ir.Module, profile: BenchmarkProfile) -> None:
    """Two handler functions + (if the benchmark uses indirect control
    flow at all) a writable global handler slot.

    The slot is initialized with a relocated code pointer, exercising
    the startup-initializer path of section 4.1.4.  Purely numeric
    benchmarks (lbm, namd, ...) have no writable control-flow pointers
    and therefore hold zero verifier entries — the "14 benchmarks with
    zero entries" of section 5.4.
    """
    h1 = module.add_function("handler_scale", HANDLER_SIG)
    b = IRBuilder(h1.add_block("entry"))
    b.ret(b.add(b.mul(h1.params[0], b.const(3)), b.const(1)))

    h2 = module.add_function("handler_mix", HANDLER_SIG)
    b = IRBuilder(h2.add_block("entry"))
    b.ret(b.binop("xor", h2.params[0], b.const(0x5D5D)))

    if profile.icalls_per_k or profile.fnptr_writes_per_k:
        module.add_global("handler_slot", ptr(HANDLER_SIG),
                          initializer=[ir.FunctionRef(h1)])


def _emit_protected_helper(module: ir.Module) -> None:
    """A helper qualifying for return-pointer protection: it writes
    memory, allocates stack, returns, and is never tail-called."""
    fn = module.add_function("protected_step", func(I64, [I64]))
    b = IRBuilder(fn.add_block("entry"))
    tmp = b.alloca(I64, "tmp")
    b.store(fn.params[0], tmp)
    v = b.load(tmp, "v")
    v = b.add(v, b.const(17), "v1")
    v = b.binop("xor", v, b.const(0x1234), "v2")
    b.store(v, tmp)
    b.ret(b.load(tmp, "v3"))


class _WorkEmitter:
    """Emits the per-iteration mix directly into ``main``'s loop body.

    SPEC hot loops live inside long-running function frames rather than
    calling a fresh function per iteration, so the mix is emitted
    inline: return-pointer-protection frequency is then governed by the
    profile's *protected-call density*, not by an artifact of program
    structure.  Event results produced inside conditional blocks are
    accumulated through a stack slot (``racc``/``acc_slot``) so no SSA
    value crosses a branch.
    """

    def __init__(self, module: ir.Module, profile: BenchmarkProfile,
                 iterations: int, compiler: str,
                 function: ir.Function, body: ir.BasicBlock,
                 i_value: ir.Value, racc: ir.Value,
                 acc_slot: ir.Value) -> None:
        self.module = module
        self.profile = profile
        self.iterations = iterations
        self.compiler = compiler
        self.work = function
        self.b = IRBuilder(body)
        self.i_arg = i_value
        self.racc = racc
        self.acc_slot = acc_slot
        #: Set when the blockop pattern defers its call through the
        #: copied pointer to program exit (C++ destructor style).
        self._terminal_blockop_dst = None

    # -- helpers ---------------------------------------------------------------

    def _accumulate(self, bb: IRBuilder, value: ir.Value) -> None:
        total = bb.add(bb.load(self.racc, "r_in"), value, "r_add")
        bb.store(total, self.racc)

    def _guarded(self, tag: str, cond: ir.Value,
                 emit_body: Callable[[IRBuilder], None]) -> None:
        """Emit ``if cond: body`` and continue in the join block."""
        body = self.work.add_block(f"{tag}_body")
        join = self.work.add_block(f"{tag}_join")
        self.b.cond_br(cond, body, join)
        self.b.position_at_end(body)
        emit_body(self.b)
        self.b.br(join)
        self.b.position_at_end(join)

    def _periodic(self, tag: str, per_k: int,
                  emit_body: Callable[[IRBuilder, int], None]) -> None:
        """Emit the event per its density: unconditionally for every
        whole event per iteration, plus a modulo-guarded remainder."""
        if per_k <= 0:
            return
        for repeat in range(per_k // 1000):
            emit_body(self.b, repeat)
        rem_k = per_k % 1000
        if rem_k <= 0:
            return
        period = max(1, round(1000 / rem_k))
        if period == 1:
            emit_body(self.b, per_k // 1000)
            return
        rem = self.b.binop("rem", self.i_arg, self.b.const(period),
                           f"{tag}_rem")
        hit = self.b.cmp("eq", rem, self.b.const(0), f"{tag}_hit")
        self._guarded(tag, hit, lambda bb: emit_body(bb, 0))

    # -- the mix -------------------------------------------------------------------

    def emit(self) -> ir.BasicBlock:
        """Emit the mix; returns the final join block (unterminated)."""
        profile, b = self.profile, self.b

        # Compute backbone.
        acc = b.load(self.acc_slot, "acc_in")
        for k in range(profile.compute_ops):
            op = ("add", "xor", "add")[k % 3]
            acc = b.binop(op, acc, b.const((k * 2654435761) % 1000 + 1),
                          f"c{k}")
        acc = b.binop("and", acc, b.const((1 << 48) - 1), "cmask")

        # Float work.
        facc = None
        if profile.float_ops:
            facc = b.const(3 * FP_ONE)
            for k in range(profile.float_ops):
                operand = b.const(FP_ONE + 37 * (k + 1))
                facc = b.binop("fmul" if k % 2 else "fadd", facc, operand,
                               f"f{k}")
            facc = b.binop("and", facc, b.const((1 << 40) - 1), "fmask")

        self._emit_fnptr_writes()
        self._emit_icalls()
        self._emit_local_icalls()
        self._emit_protected_calls()
        if profile.block_ops_per_k:
            self._emit_blockops()
        self._emit_heap()
        self._emit_syscalls()
        if profile.has("fnptr_type_cast"):
            self._emit_type_cast()
        if profile.has("fnptr_int_roundtrip"):
            self._emit_int_roundtrip()
        if profile.has("ccfi_float_div_hazard"):
            # The induced crash (register pressure, section 5.1) happens
            # on the first iteration, before any output has been
            # flushed — the run is an *error* with no (invalid) output,
            # though any false positives have already been emitted.
            self._emit_div_hazard()
        if self.compiler == "legacy" and profile.has("old_clang_bug"):
            self._emit_legacy_miscompile()

        b = self.b  # now positioned in the final join block
        acc = b.add(acc, b.load(self.racc, "r_out"), "with_events")
        if facc is not None and profile.has("float_heavy"):
            acc = b.add(acc, facc, "fmix")
        b.store(acc, self.acc_slot)
        b.store(b.const(0), self.racc)
        return b.block

    def _emit_fnptr_writes(self) -> None:
        if not self.profile.fnptr_writes_per_k:
            return
        h1 = self.module.functions["handler_scale"]
        h2 = self.module.functions["handler_mix"]
        slot = self.module.globals["handler_slot"]

        def emit(bb: IRBuilder, r: int) -> None:
            parity = bb.binop("and", self.i_arg, bb.const(1), f"par{r}")
            sel = bb.select(parity, ir.FunctionRef(h2), ir.FunctionRef(h1),
                            f"sel{r}")
            bb.store(sel, slot)
        self._periodic("fnw", self.profile.fnptr_writes_per_k, emit)

    def _emit_icalls(self) -> None:
        if not self.profile.icalls_per_k:
            return
        slot = self.module.globals["handler_slot"]

        def emit(bb: IRBuilder, r: int) -> None:
            target = bb.load(slot, f"ict{r}")
            value = bb.icall(target, [self.i_arg], HANDLER_SIG, f"ic{r}")
            self._accumulate(bb, value)
        self._periodic("icall", self.profile.icalls_per_k, emit)

    def _emit_local_icalls(self) -> None:
        """Locally-resolved callbacks: a function pointer stored to a
        local slot and immediately called, plus a statically-unique
        virtual call.  These are exactly the patterns the paper's
        optimizations eliminate — store-to-load forwarding removes the
        check, elision the define, devirtualization the indirect call —
        so with the full pipeline they cost no messages at all.
        """
        per_k = self.profile.icalls_per_k // 2
        if per_k <= 0:
            return
        h1 = self.module.functions["handler_scale"]
        h2 = self.module.functions["handler_mix"]

        def emit(bb: IRBuilder, r: int) -> None:
            lslot = bb.alloca(ptr(HANDLER_SIG), f"lslot{r}")
            bb.store(ir.FunctionRef(h1), lslot)
            loaded = bb.load(lslot, f"ll{r}")
            self._accumulate(
                bb, bb.icall(loaded, [self.i_arg], HANDLER_SIG, f"lc{r}"))
            known = bb.cast(ir.FunctionRef(h2), ptr(HANDLER_SIG), f"kt{r}")
            self._accumulate(
                bb, bb.icall(known, [self.i_arg], HANDLER_SIG, f"kc{r}"))
        self._periodic("licall", per_k, emit)

    def _emit_protected_calls(self) -> None:
        protected = self.module.functions["protected_step"]

        def emit(bb: IRBuilder, r: int) -> None:
            self._accumulate(bb, bb.call(protected, [self.i_arg], f"pc{r}"))
        self._periodic("prot", self.profile.protected_calls_per_k, emit)

    def _emit_blockops(self) -> None:
        """Block memory operations over composites.

        For ``blockop_fnptr_copy`` profiles, the composite carries a
        function pointer that is called through after the copy — the
        pattern that breaks CCFI's address-keyed MACs and CPI's
        unredirected safe store, and that HerQules handles with
        ``Pointer-Block-Copy``.  ``decayed_blockop`` profiles pass a
        pointer-free *static* type (the inter-procedural decay pattern)
        and therefore go on the block-op allowlist (section 4.1.4).
        Other profiles copy plain data buffers — statically pointer-free,
        so strict subtype checking elides their messages entirely.
        """
        carries_pointer = self.profile.has("blockop_fnptr_copy")
        if carries_pointer:
            h1 = self.module.functions["handler_scale"]
            record = StructType("Handler",
                                [("fp", ptr(HANDLER_SIG)), ("data", I64)])
            src = self.module.add_global(
                "record_src", record,
                initializer=[ir.FunctionRef(h1), ir.Constant(5)])
            dst = self.module.add_global(
                "record_dst", record,
                initializer=[ir.Constant(0), ir.Constant(0)])
            decayed = self.profile.has("decayed_blockop")
            element_type = ArrayType(I64, 2) if decayed else record
            if decayed:
                self.module.block_op_allowlist.add(self.work.name)

            self._terminal_blockop_dst = dst

            def emit(bb: IRBuilder, r: int) -> None:
                bb.memcpy(dst, src, bb.const(record.size()),
                          element_type=element_type, decayed=decayed)
                fp_slot = bb.gep_field(dst, "fp", f"bfp{r}")
                self._accumulate(bb, bb.load(fp_slot, f"bt{r}"))
                data_slot = bb.gep_field(dst, "data", f"bdt{r}")
                self._accumulate(bb, bb.load(data_slot, f"bd{r}"))
        else:
            data = ArrayType(I64, 4)
            src = self.module.add_global(
                "buffer_src", data, initializer=[ir.Constant(9)] * 4)
            dst = self.module.add_global("buffer_dst", data)

            def emit(bb: IRBuilder, r: int) -> None:
                bb.memcpy(dst, src, bb.const(data.size()),
                          element_type=data)
                self._accumulate(bb, bb.load(
                    bb.gep_index(dst, bb.const(0), f"bd{r}"), f"bv{r}"))
        self._periodic("blk", self.profile.block_ops_per_k, emit)

    def _emit_heap(self) -> None:
        def emit(bb: IRBuilder, r: int) -> None:
            block = bb.malloc(bb.const(32), f"hp{r}")
            bb.store(self.i_arg, block)
            self._accumulate(bb, bb.load(block, f"hv{r}"))
            bb.free(block)
        self._periodic("heap", self.profile.heap_ops_per_k, emit)

    def _emit_syscalls(self) -> None:
        """Periodic output writes, placed at the *end* of each period:
        benchmarks buffer output and flush it, so a crash at startup
        produces no output at all (the Table 4 error-vs-invalid split)."""
        per_k = self.profile.syscalls_per_k
        if per_k <= 0:
            return
        # Flush at least a few times per run regardless of nominal rate.
        period = max(2, min(round(1000 / min(per_k, 1000)),
                            max(2, self.iterations // 4)))
        rem = self.b.binop("rem", self.i_arg, self.b.const(period), "sys_rem")
        hit = self.b.cmp("eq", rem, self.b.const(period - 1), "sys_hit")

        def emit(bb: IRBuilder) -> None:
            bb.syscall(1, [bb.const(1), self.i_arg, bb.const(8)], "sc0")
        self._guarded("sys", hit, emit)

    def _emit_type_cast(self) -> None:
        """povray's pattern: define a pointer with one type, call through
        another (legal C; a false positive for type-matching CFI).

        The store sees the pointer's defining type; the load goes through
        a cast alias with a different signature, so type-matching designs
        (Clang CFI's class check, CCFI's type-bound MAC) reject a benign
        call."""
        h1 = self.module.functions["handler_scale"]
        cast_slot = self.module.add_global("cast_slot", ptr(HANDLER_SIG))

        def emit(bb: IRBuilder, r: int) -> None:
            bb.store(ir.FunctionRef(h1), cast_slot)
            alias = bb.cast(cast_slot, ptr(ptr(CAST_SIG)), f"ca{r}")
            target = bb.load(alias, f"ct{r}")
            self._accumulate(
                bb, bb.icall(target, [self.i_arg, self.i_arg], CAST_SIG,
                             f"cc{r}"))
        self._periodic("cast", 45, emit)

    def _emit_int_roundtrip(self) -> None:
        """Store a function pointer with its real type, reload it through
        an integer-typed alias — only CCFI's type-bound MAC objects."""
        h1 = self.module.functions["handler_scale"]
        slot = self.module.add_global("roundtrip_slot", I64)

        def emit(bb: IRBuilder, r: int) -> None:
            typed = bb.cast(slot, ptr(ptr(HANDLER_SIG)), f"ts{r}")
            bb.store(ir.FunctionRef(h1), typed)
            raw = bb.load(slot, f"raw{r}")  # I64-typed load, same slot
            target = bb.cast(raw, ptr(HANDLER_SIG), f"rt{r}")
            self._accumulate(
                bb, bb.icall(target, [self.i_arg], HANDLER_SIG, f"rc{r}"))
        self._periodic("rtp", 45, emit)

    def _emit_div_hazard(self) -> None:
        """A float-derived divisor that is non-zero exactly when float
        arithmetic is exact: CCFI's precision loss turns it to zero."""
        a, c = 123457, 78901  # product has non-zero low bits
        exact = (a * c) // FP_ONE
        assert exact & 0xFF, "hazard constants must have non-zero low bits"

        def emit(bb: IRBuilder, r: int) -> None:
            product = bb.binop("fmul", bb.const(a), bb.const(c), f"hz{r}")
            ok = bb.cmp("eq", product, bb.const(exact), f"hok{r}")
            self._accumulate(bb, bb.binop("div", bb.const(100), ok, f"hd{r}"))
        self._periodic("hzd", 60, emit)

    def _emit_legacy_miscompile(self) -> None:
        """The Clang 3.x miscompilation: an out-of-bounds read from an
        unmapped address on a late iteration (after any false positives
        have already been observed)."""
        trip = max(self.iterations - 2, 1)
        hit = self.b.cmp("eq", self.i_arg, self.b.const(trip), "bug_hit")

        def emit(bb: IRBuilder) -> None:
            bad = bb.cast(bb.const(16), ptr(I64), "bad_ptr")
            bb.load(bad, "bug_read")  # SIGSEGV: unmapped page
        self._guarded("legacy_bug", hit, emit)


def _emit_main(module: ir.Module, profile: BenchmarkProfile,
               iterations: int, compiler: str) -> None:
    """``main``: optional startup patterns, the hot loop (with the mix
    emitted inline), final output."""
    mainf = module.add_function("main", func(I64, []))
    entry = mainf.add_block("entry")
    loop = mainf.add_block("loop")
    done = mainf.add_block("done")
    b = IRBuilder(entry)
    acc_slot = b.alloca(I64, "acc_slot")
    b.store(b.const(0), acc_slot)
    racc = b.alloca(I64, "racc")
    b.store(b.const(0), racc)

    if profile.is_cpp and profile.heap_ops_per_k:
        # C++ benchmarks hold a pool of live heap objects, each carrying
        # a virtual-table pointer: these are the long-lived verifier
        # entries behind section 5.4's skewed memory-overhead numbers.
        _emit_object_pool(module, b, mainf,
                          max(12, profile.heap_ops_per_k // 2))
        b = IRBuilder(mainf.blocks[-1])

    if profile.has("static_init_uaf"):
        # The omnetpp static-initialization-order bug: a control-flow
        # pointer in a heap object is used after the object is freed.
        # The memory is not recycled, so every design except HQ-CFI
        # (which tracks pointer lifetime) silently executes it.
        h1 = module.functions["handler_scale"]
        obj = b.malloc(b.const(16), "static_obj")
        typed = b.cast(obj, ptr(ptr(HANDLER_SIG)), "static_fp")
        b.store(ir.FunctionRef(h1), typed)
        b.free(obj)
        stale = b.load(typed, "stale")
        b.icall(stale, [b.const(1)], HANDLER_SIG, "uaf_call")

    preheader = b.block
    b.br(loop)
    b.position_at_end(loop)
    i = ir.Phi(I64, "i")
    loop.append(i)
    i.add_incoming(b.const(0), preheader)

    emitter = _WorkEmitter(module, profile, iterations, compiler,
                           mainf, loop, i, racc, acc_slot)
    tail = emitter.emit()
    b.position_at_end(tail)
    i_next = b.add(i, b.const(1), "i_next")
    i.add_incoming(i_next, tail)
    more = b.cmp("lt", i_next, b.const(iterations), "more")
    b.cond_br(more, loop, done)

    b.position_at_end(done)
    if emitter._terminal_blockop_dst is not None:
        # Destructor-style call through the copied pointer at exit
        # (where CPI's unredirected safe store yields NULL and crashes,
        # after the run's incremental output but before the checksum).
        dst = emitter._terminal_blockop_dst
        fp_slot = b.gep_field(dst, "fp", "final_fp")
        target = b.load(fp_slot, "final_target")
        b.icall(target, [b.const(1)], HANDLER_SIG, "final_call")
    acc_out = b.load(acc_slot, "acc_out")
    checksum = b.binop("and", acc_out, b.const((1 << 62) - 1), "checksum")
    b.syscall(1, [b.const(1), checksum, b.const(8)], "emit")
    b.ret(b.const(0))


def _emit_object_pool(module: ir.Module, b: IRBuilder,
                      mainf: ir.Function, count: int) -> None:
    """Allocate ``count`` live objects whose first word is a vptr.

    The long-lived verifier entries behind section 5.4's skewed
    memory-overhead distribution.
    """
    h1 = module.functions["handler_scale"]
    preheader = b.block
    pool_loop = mainf.add_block("pool_loop")
    pool_done = mainf.add_block("pool_done")
    b.br(pool_loop)
    b.position_at_end(pool_loop)
    j = ir.Phi(I64, "pool_j")
    pool_loop.append(j)
    j.add_incoming(b.const(0), preheader)
    obj = b.malloc(b.const(16), "pool_obj")
    vptr_slot = b.cast(obj, ptr(ptr(HANDLER_SIG)), "pool_vptr")
    b.store(ir.FunctionRef(h1), vptr_slot)
    j_next = b.add(j, b.const(1), "pool_j_next")
    j.add_incoming(j_next, pool_loop)
    more = b.cmp("lt", j_next, b.const(count), "pool_more")
    b.cond_br(more, pool_loop, pool_done)
    b.position_at_end(pool_done)
