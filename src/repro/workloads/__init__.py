"""Synthetic SPEC CPU2006/2017 + NGINX benchmark workloads."""

from repro.workloads.generator import build_module
from repro.workloads.profiles import PROFILES, get_profile, spec_profiles

__all__ = ["PROFILES", "build_module", "get_profile", "spec_profiles"]
