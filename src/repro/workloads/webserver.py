"""A miniature web server as a monitored application.

The paper's NGINX benchmark motivates HerQules on server software:
long-lived processes, handler dispatch through function-pointer tables,
request buffers fed by untrusted input.  This module builds exactly
that shape as a real program for the simulated machine:

* a **handler table** — a writable global array of function pointers,
  indexed by request method (GET / POST / fallback 404);
* a **request loop** — each request is read from the (attacker-
  controllable) input region into a header buffer, parsed, and
  dispatched through the table;
* a **response path** — handlers compute a status value which the
  server writes out (one syscall per request).

The header buffer sits directly below the handler table in the data
segment, so a request whose declared header length exceeds the buffer
is the classic server take-over: the copy runs into the table and the
next dispatch jumps wherever the request said.  :func:`benign_trace`
and :func:`exploit_trace` build the two inputs;
``examples/webserver_demo.py`` runs the full story under every design.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.compiler import ir
from repro.compiler.builder import IRBuilder
from repro.compiler.types import ArrayType, I64, func, ptr
from repro.sim.cpu import SYS_WIN
from repro.sim.loader import Image
from repro.sim.memory import WORD_SIZE

#: Request methods (indices into the handler table).
METHOD_GET = 0
METHOD_POST = 1
METHOD_OTHER = 2
HANDLER_SLOTS = 3

#: Header buffer capacity, in words.
HEADER_WORDS = 4

#: Words per request record in the input region: method, header length,
#: then ``HEADER_WORDS + 2`` words of header payload capacity.
REQUEST_STRIDE = 2 + HEADER_WORDS + 2

HANDLER_SIG = func(I64, [I64])


def build_server(max_requests: int = 8) -> ir.Module:
    """Build the server module (process ``max_requests`` then exit)."""
    module = ir.Module("miniserver")

    get_handler = module.add_function("handle_get", HANDLER_SIG)
    b = IRBuilder(get_handler.add_block("entry"))
    b.ret(b.add(b.const(200), b.binop("and", get_handler.params[0],
                                      b.const(0xF))))

    post_handler = module.add_function("handle_post", HANDLER_SIG)
    b = IRBuilder(post_handler.add_block("entry"))
    b.ret(b.add(b.const(201), b.binop("and", post_handler.params[0],
                                      b.const(0xF))))

    fallback = module.add_function("handle_other", HANDLER_SIG)
    b = IRBuilder(fallback.add_block("entry"))
    b.ret(b.const(404))

    # The attacker's prize: a function that performs the marker syscall.
    spawn_shell = module.add_function("spawn_shell", HANDLER_SIG)
    b = IRBuilder(spawn_shell.add_block("entry"))
    b.syscall(SYS_WIN, [])
    b.ret(b.const(666))

    # Data-segment layout: header buffer immediately below the table.
    module.add_global("header_buf", ArrayType(I64, HEADER_WORDS),
                      initializer=[ir.Constant(0)] * HEADER_WORDS)
    table = module.add_global(
        "handler_table", ArrayType(ptr(HANDLER_SIG), HANDLER_SLOTS),
        initializer=[ir.FunctionRef(get_handler),
                     ir.FunctionRef(post_handler),
                     ir.FunctionRef(fallback)])
    requests = module.add_global(
        "request_input", ArrayType(I64, max_requests * REQUEST_STRIDE),
        initializer=[ir.Constant(0)] * (max_requests * REQUEST_STRIDE))

    header_buf = module.globals["header_buf"]

    mainf = module.add_function("main", func(I64, []))
    entry = mainf.add_block("entry")
    loop = mainf.add_block("loop")
    done = mainf.add_block("done")
    b = IRBuilder(entry)
    status_slot = b.alloca(I64, "status_acc")
    b.store(b.const(0), status_slot)
    preheader = b.block
    b.br(loop)

    b.position_at_end(loop)
    i = ir.Phi(I64, "req")
    loop.append(i)
    i.add_incoming(b.const(0), preheader)

    # Locate this request's record.
    record = b.mul(i, b.const(REQUEST_STRIDE), "rec_idx")
    method = b.load(b.gep_index(requests, record, "m_slot"), "method")
    length = b.load(b.gep_index(requests, b.add(record, b.const(1)),
                                "l_slot"), "hdr_len")
    # The vulnerable copy: trusts the declared header length.
    header_src = b.gep_index(requests, b.add(record, b.const(2)), "h_src")
    b.memcpy(header_buf, header_src,
             b.mul(length, b.const(WORD_SIZE)),
             element_type=ArrayType(I64, HEADER_WORDS))

    # Dispatch: clamp unknown methods to the fallback slot.
    over = b.cmp("ge", method, b.const(HANDLER_SLOTS), "m_over")
    slot_index = b.select(over, b.const(METHOD_OTHER), method, "m_idx")
    handler_slot = b.gep_index(table, slot_index, "h_slot")
    handler = b.load(handler_slot, "handler")
    status = b.icall(handler, [method], HANDLER_SIG, "status")
    # Respond (one write per request) and accumulate.
    b.syscall(1, [b.const(1), status, b.const(8)], "respond")
    b.store(b.add(b.load(status_slot, "acc0"), status, "acc1"),
            status_slot)

    next_i = b.add(i, b.const(1), "req_next")
    i.add_incoming(next_i, b.block)
    more = b.cmp("lt", next_i, b.const(max_requests), "more")
    b.cond_br(more, loop, done)

    b.position_at_end(done)
    b.ret(b.load(status_slot, "total"))

    module.verify()
    return module


# ---------------------------------------------------------------------------
# Request traces
# ---------------------------------------------------------------------------

Request = Tuple[int, List[int]]  # (method, header words)


def benign_trace(count: int = 8) -> List[Request]:
    """A mixed GET/POST/unknown request stream with legal headers."""
    trace: List[Request] = []
    for index in range(count):
        method = (METHOD_GET, METHOD_POST, 7)[index % 3]
        header = [0x48545450 + index] * min(HEADER_WORDS, 2 + index % 3)
        trace.append((method, header))
    return trace


def exploit_trace(count: int = 8,
                  malicious_index: int = 3) -> List[Request]:
    """A benign stream with one oversized request whose overflowing
    header words will be patched (at plant time) to the address of
    ``spawn_shell``, landing on the GET handler's table slot."""
    trace = benign_trace(count)
    # Oversized header: fills the buffer and spills one word into the
    # handler table (slot 0 = GET).
    trace[malicious_index] = (METHOD_GET,
                              [0x41] * HEADER_WORDS + [-1])  # -1: patch me
    return trace


def plant_trace(image: Image, trace: List[Request]) -> None:
    """Write a request trace into the server's input region.

    Words with value ``-1`` are patched to the address of
    ``spawn_shell`` — the attacker learned it from a leak; the compiler
    never sees it.
    """
    base = image.global_address["request_input"]
    shell = image.function_address["spawn_shell"]
    memory = image.process.memory
    for index, (method, header) in enumerate(trace):
        record = base + index * REQUEST_STRIDE * WORD_SIZE
        memory.store_physical(record, method)
        memory.store_physical(record + WORD_SIZE, len(header))
        for offset, word in enumerate(header):
            value = shell if word == -1 else word
            memory.store_physical(record + (2 + offset) * WORD_SIZE,
                                  value)


def serve(design: str, trace: List[Request], channel: str = "model",
          kill_on_violation: bool = True):
    """Build, plant, and run the server under ``design``."""
    from repro.core.framework import run_program
    module = build_server(max_requests=len(trace))
    return run_program(
        module, design=design, channel=channel,
        kill_on_violation=kill_on_violation,
        pre_run=lambda image, interp: plant_trace(image, trace))
