"""Type system for the mini IR.

A deliberately small subset of LLVM's type system — just enough to
express what HerQules' instrumentation reasons about: function pointers
(including ones laundered through casts and struct fields), C++ objects
with vtable pointers, composite types passed to block memory operations,
and ordinary scalar data.

The data model is word-granular: every scalar (int, float, pointer)
occupies one 8-byte word, so struct layout is simply one word per scalar
field.  This matches the simulated memory (:mod:`repro.sim.memory`) and
is sufficient for pointer-integrity policies, which only care about
pointer-sized slots.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

WORD = 8


class Type:
    """Base class for IR types."""

    def size(self) -> int:
        """Size in bytes."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        return ()


class VoidType(Type):
    """No value; only valid as a function return type."""

    def size(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "void"


class IntType(Type):
    """Integer; all widths occupy one word in memory."""

    def __init__(self, bits: int = 64) -> None:
        self.bits = bits

    def size(self) -> int:
        return WORD

    def _key(self):
        return (self.bits,)

    def __repr__(self) -> str:
        return f"i{self.bits}"


class FloatType(Type):
    """Floating point; occupies one word."""

    def size(self) -> int:
        return WORD

    def __repr__(self) -> str:
        return "double"


class FunctionType(Type):
    """A function signature.  Not a first-class value type; only pointers
    to functions are values."""

    def __init__(self, ret: Type, params: Sequence[Type], vararg: bool = False) -> None:
        self.ret = ret
        self.params = tuple(params)
        self.vararg = vararg

    def size(self) -> int:
        raise TypeError("function types have no size; use a pointer to one")

    def _key(self):
        return (self.ret, self.params, self.vararg)

    def __repr__(self) -> str:
        params = ", ".join(repr(p) for p in self.params)
        if self.vararg:
            params += ", ..."
        return f"{self.ret!r}({params})"


class PointerType(Type):
    """Pointer to ``pointee``; one word."""

    def __init__(self, pointee: Type) -> None:
        self.pointee = pointee

    def size(self) -> int:
        return WORD

    def _key(self):
        return (self.pointee,)

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"


class ArrayType(Type):
    """Fixed-size array."""

    def __init__(self, element: Type, count: int) -> None:
        self.element = element
        self.count = count

    def size(self) -> int:
        return self.element.size() * self.count

    def _key(self):
        return (self.element, self.count)

    def __repr__(self) -> str:
        return f"[{self.count} x {self.element!r}]"


class StructType(Type):
    """A named composite type with ordered fields.

    ``is_cpp_object``/``has_vptr`` mark C++ classes whose first field is
    the virtual-table pointer, which the CFI passes treat specially
    (section 4.1.3: vtable and vtable-table pointers).
    """

    def __init__(self, name: str, fields: Sequence[Tuple[str, Type]],
                 has_vptr: bool = False) -> None:
        self.name = name
        self.fields = list(fields)
        self.has_vptr = has_vptr

    def size(self) -> int:
        return sum(ftype.size() for _, ftype in self.fields)

    def field_offset(self, field_name: str) -> int:
        """Byte offset of the named field."""
        offset = 0
        for name, ftype in self.fields:
            if name == field_name:
                return offset
            offset += ftype.size()
        raise KeyError(f"struct {self.name} has no field {field_name!r}")

    def field_type(self, field_name: str) -> Type:
        for name, ftype in self.fields:
            if name == field_name:
                return ftype
        raise KeyError(f"struct {self.name} has no field {field_name!r}")

    def field_index(self, field_name: str) -> int:
        for i, (name, _) in enumerate(self.fields):
            if name == field_name:
                return i
        raise KeyError(f"struct {self.name} has no field {field_name!r}")

    def _key(self):
        # Structs are nominal: two structs with the same name are the
        # same type (like LLVM identified structs).
        return (self.name,)

    def __repr__(self) -> str:
        return f"%{self.name}"


# -- shared singletons -------------------------------------------------------

VOID = VoidType()
I64 = IntType(64)
I32 = IntType(32)
I8 = IntType(8)
F64 = FloatType()


def ptr(pointee: Type) -> PointerType:
    """Shorthand for :class:`PointerType`."""
    return PointerType(pointee)


def func(ret: Type, params: Sequence[Type] = (), vararg: bool = False) -> FunctionType:
    """Shorthand for :class:`FunctionType`."""
    return FunctionType(ret, params, vararg)


def is_function_pointer(t: Type) -> bool:
    """Whether ``t`` is a direct pointer-to-function type."""
    return isinstance(t, PointerType) and isinstance(t.pointee, FunctionType)


def is_vtable_pointer(t: Type) -> bool:
    """Whether ``t`` is a pointer to a vtable (array of function ptrs)."""
    return (isinstance(t, PointerType)
            and isinstance(t.pointee, ArrayType)
            and is_function_pointer(t.pointee.element))


def contains_function_pointer(t: Type, _seen: Optional[set] = None) -> bool:
    """Whether ``t`` transitively contains a function-pointer or vtable
    slot — the *strict subtype check* applied to composite types passed
    into block memory operations (section 4.1.4, Final Lowering)."""
    if _seen is None:
        _seen = set()
    if id(t) in _seen:
        return False
    _seen.add(id(t))
    if is_function_pointer(t) or is_vtable_pointer(t):
        return True
    if isinstance(t, StructType):
        if t.has_vptr:
            return True
        return any(contains_function_pointer(ft, _seen) for _, ft in t.fields)
    if isinstance(t, ArrayType):
        return contains_function_pointer(t.element, _seen)
    return False


def pointer_slot_offsets(t: Type, base: int = 0) -> List[int]:
    """Byte offsets of every function-pointer/vptr slot inside ``t``.

    Used by the verifier-side block operations and by tests to predict
    which slots a ``Pointer-Block-Copy`` should relocate.
    """
    offsets: List[int] = []
    if is_function_pointer(t) or is_vtable_pointer(t):
        return [base]
    if isinstance(t, StructType):
        cursor = base
        if t.has_vptr and t.fields and t.fields[0][0] != "__vptr":
            # has_vptr structs are expected to declare __vptr explicitly;
            # tolerate either spelling.
            pass
        for _, ftype in t.fields:
            offsets.extend(pointer_slot_offsets(ftype, cursor))
            cursor += ftype.size()
    elif isinstance(t, ArrayType):
        cursor = base
        for _ in range(t.count):
            offsets.extend(pointer_slot_offsets(t.element, cursor))
            cursor += t.element.size()
    return offsets
