"""Fluent construction API for the mini IR.

Plays the role of ``llvm::IRBuilder``: tracks an insertion point and
provides one method per instruction.  The workload generators
(:mod:`repro.workloads`) and the attack suite build victim programs with
this API; tests use it to assemble minimal reproducers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.compiler import ir
from repro.compiler.types import FunctionType, I64, Type


class IRBuilder:
    """Builds instructions at a movable insertion point."""

    def __init__(self, block: Optional[ir.BasicBlock] = None) -> None:
        self.block = block

    def position_at_end(self, block: ir.BasicBlock) -> "IRBuilder":
        self.block = block
        return self

    def _emit(self, instruction: ir.Instruction) -> ir.Instruction:
        if self.block is None:
            raise ValueError("no insertion point set")
        return self.block.append(instruction)

    # -- constants ------------------------------------------------------------

    @staticmethod
    def const(value: int, type_: Type = I64) -> ir.Constant:
        return ir.Constant(value, type_)

    # -- memory ---------------------------------------------------------------

    def alloca(self, allocated_type: Type, name: str = "") -> ir.Alloca:
        return self._emit(ir.Alloca(allocated_type, name))

    def load(self, pointer: ir.Value, name: str = "", **flags) -> ir.Load:
        return self._emit(ir.Load(pointer, name, **flags))

    def store(self, value: ir.Value, pointer: ir.Value, **flags) -> ir.Store:
        return self._emit(ir.Store(value, pointer, **flags))

    def gep_field(self, pointer: ir.Value, field: str, name: str = "") -> ir.Gep:
        return self._emit(ir.Gep(pointer, field=field, name=name))

    def gep_index(self, pointer: ir.Value, index: ir.Value, name: str = "") -> ir.Gep:
        return self._emit(ir.Gep(pointer, index=index, name=name))

    def cast(self, value: ir.Value, to: Type, name: str = "") -> ir.Cast:
        return self._emit(ir.Cast(value, to, name))

    # -- arithmetic -------------------------------------------------------------

    def binop(self, op: str, lhs: ir.Value, rhs: ir.Value, name: str = "") -> ir.BinOp:
        return self._emit(ir.BinOp(op, lhs, rhs, name))

    def add(self, lhs: ir.Value, rhs: ir.Value, name: str = "") -> ir.BinOp:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: ir.Value, rhs: ir.Value, name: str = "") -> ir.BinOp:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: ir.Value, rhs: ir.Value, name: str = "") -> ir.BinOp:
        return self.binop("mul", lhs, rhs, name)

    def cmp(self, op: str, lhs: ir.Value, rhs: ir.Value, name: str = "") -> ir.Cmp:
        return self._emit(ir.Cmp(op, lhs, rhs, name))

    def select(self, cond: ir.Value, if_true: ir.Value, if_false: ir.Value,
               name: str = "") -> ir.Select:
        return self._emit(ir.Select(cond, if_true, if_false, name))

    def phi(self, type_: Type, name: str = "") -> ir.Phi:
        return self._emit(ir.Phi(type_, name))

    # -- control ------------------------------------------------------------------

    def br(self, target: ir.BasicBlock) -> ir.Br:
        return self._emit(ir.Br(target))

    def cond_br(self, cond: ir.Value, if_true: ir.BasicBlock,
                if_false: ir.BasicBlock) -> ir.CondBr:
        return self._emit(ir.CondBr(cond, if_true, if_false))

    def ret(self, value: Optional[ir.Value] = None) -> ir.Ret:
        return self._emit(ir.Ret(value))

    # -- calls ------------------------------------------------------------------------

    def call(self, callee: ir.Function, args: Sequence[ir.Value] = (),
             name: str = "", tail: bool = False) -> ir.Call:
        return self._emit(ir.Call(callee, args, name, tail))

    def icall(self, target: ir.Value, args: Sequence[ir.Value],
              signature: FunctionType, name: str = "") -> ir.ICall:
        return self._emit(ir.ICall(target, args, signature, name))

    # -- heap / libc -------------------------------------------------------------------

    def malloc(self, size: ir.Value, name: str = "") -> ir.Malloc:
        return self._emit(ir.Malloc(size, name))

    def free(self, pointer: ir.Value) -> ir.Free:
        return self._emit(ir.Free(pointer))

    def realloc(self, pointer: ir.Value, size: ir.Value, name: str = "") -> ir.Realloc:
        return self._emit(ir.Realloc(pointer, size, name))

    def memcpy(self, dst: ir.Value, src: ir.Value, size: ir.Value,
               element_type: Optional[Type] = None, decayed: bool = False) -> ir.MemCopy:
        return self._emit(ir.MemCopy(dst, src, size, move=False,
                                     element_type=element_type, decayed=decayed))

    def memmove(self, dst: ir.Value, src: ir.Value, size: ir.Value,
                element_type: Optional[Type] = None, decayed: bool = False) -> ir.MemCopy:
        return self._emit(ir.MemCopy(dst, src, size, move=True,
                                     element_type=element_type, decayed=decayed))

    def memset(self, dst: ir.Value, value: ir.Value, size: ir.Value) -> ir.MemSet:
        return self._emit(ir.MemSet(dst, value, size))

    def syscall(self, number: int, args: Sequence[ir.Value] = (),
                name: str = "") -> ir.Syscall:
        return self._emit(ir.Syscall(number, args, name))

    def setjmp(self, buf: ir.Value, name: str = "") -> ir.Setjmp:
        return self._emit(ir.Setjmp(buf, name))

    def longjmp(self, buf: ir.Value, value: ir.Value) -> ir.Longjmp:
        return self._emit(ir.Longjmp(buf, value))
