"""C++ devirtualization optimizations (section 4.1.4).

Models the three LLVM passes HerQules enables — Virtual Pointer
Invariance, Whole Program Devirtualization, and Dead Virtual Function
Elimination — whose combined effect is to convert indirect calls with a
statically unique target into direct calls, which need no CFI check.

Two devirtualization opportunities are recognized:

* an indirect call whose target value traces (through casts, φ-nodes
  with a single distinct input, and loads of *constant* globals holding
  one function) to exactly one ``FunctionRef``;
* a virtual call through a vtable slot when whole-program analysis sees
  a single implementation (the workload generators mark such calls with
  ``meta["unique_target"]``, standing in for the class-hierarchy
  analysis that our IR does not carry).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.compiler import ir
from repro.compiler.passes.base import ModulePass


class DevirtualizationPass(ModulePass):
    """Convert statically-unique indirect calls into direct calls."""

    name = "devirtualize"

    def run(self, module: ir.Module) -> None:
        for function in module.functions.values():
            for block in list(function.blocks):
                for instruction in list(block.instructions):
                    if isinstance(instruction, ir.ICall):
                        self._try_devirtualize(module, block, instruction)

    def _try_devirtualize(self, module: ir.Module, block: ir.BasicBlock,
                          icall: ir.ICall) -> None:
        target = self._unique_target(module, icall)
        if target is None:
            return
        call = ir.Call(target, icall.args, icall.name)
        index = block.instructions.index(icall)
        block.instructions[index] = call
        call.block = block
        # Rewrite uses of the icall's result.
        for user in module.all_instructions():
            user.replace_operand(icall, call)
        self.bump("calls-devirtualized")

    def _unique_target(self, module: ir.Module,
                       icall: ir.ICall) -> Optional[ir.Function]:
        marked = icall.meta.get("unique_target")
        if isinstance(marked, str) and marked in module.functions:
            return module.functions[marked]
        return self._trace(icall.target, set())

    def _trace(self, value: ir.Value, seen: Set[int]) -> Optional[ir.Function]:
        if id(value) in seen:
            return None
        seen.add(id(value))
        if isinstance(value, ir.FunctionRef):
            return value.function
        if isinstance(value, ir.Cast):
            return self._trace(value.value, seen)
        if isinstance(value, ir.Phi):
            targets = {self._trace(incoming, seen)
                       for incoming, _ in value.incoming}
            targets.discard(None)
            if len(targets) == 1:
                return targets.pop()
            return None
        if isinstance(value, ir.Load):
            pointer = value.pointer
            if isinstance(pointer, ir.GlobalVariable) and pointer.const \
                    and pointer.initializer and len(pointer.initializer) == 1:
                initializer = pointer.initializer[0]
                if isinstance(initializer, ir.FunctionRef):
                    return initializer.function
        return None
