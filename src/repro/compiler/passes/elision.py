"""Message elision: remove superfluous messages (section 4.1.4).

A field- and path-sensitive cleanup over the messaging calls the
earlier passes inserted:

* **Unchecked slots**: if a given control-flow pointer slot is never
  checked anywhere in the function (and cannot escape), its defines and
  invalidates serve no purpose and are removed.
* **Dead intermediate defines**: when multiple defines target the same
  slot and no check can observe the intermediate value (the later
  define dominates no intervening check), the earlier define is
  removed.
* **Duplicate invalidates**: consecutive invalidates of the same slot
  (e.g. after inlining of C++ destructors) collapse to one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compiler import ir
from repro.compiler.analysis import EscapeAnalysis
from repro.compiler.dataflow import slot_key
from repro.compiler.passes.base import ModulePass


def _message_slot(call: ir.RuntimeCall) -> Optional[Tuple]:
    """The slot key a messaging call refers to, when identifiable."""
    if not call.args:
        return None
    return slot_key(call.args[0])


class MessageElisionPass(ModulePass):
    """Remove messages no check can ever observe."""

    name = "elision"

    DEFINE = "hq_pointer_define"
    CHECK_NAMES = ("hq_pointer_check", "hq_pointer_check_invalidate")
    INVALIDATE = "hq_pointer_invalidate"
    BLOCK_INVALIDATE = "hq_pointer_block_invalidate"

    def run(self, module: ir.Module) -> None:
        for function in module.functions.values():
            if function.is_declaration:
                continue
            self._run_on_function(function)

    def _run_on_function(self, function: ir.Function) -> None:
        escape = EscapeAnalysis(function)
        calls = [i for i in function.instructions()
                 if isinstance(i, ir.RuntimeCall)]
        checked_slots = {slot for slot in
                         (_message_slot(c) for c in calls
                          if c.runtime_name in self.CHECK_NAMES)
                         if slot is not None}

        # Rule 1: defines/invalidates of never-checked, non-escaping slots.
        for call in calls:
            if call.runtime_name not in (self.DEFINE, self.INVALIDATE,
                                         self.BLOCK_INVALIDATE):
                continue
            slot = _message_slot(call)
            if slot is None or slot in checked_slots:
                continue
            root = call.args[0]
            while isinstance(root, (ir.Gep, ir.Cast)):
                root = root.pointer if isinstance(root, ir.Gep) else root.value
            if not isinstance(root, ir.Alloca) or escape.may_escape(root):
                # Escaping or non-local slots may be checked elsewhere
                # (other functions, block copies): keep the messages.
                continue
            if call.block is not None:
                call.block.remove(call)
                self.bump("unchecked-slot-messages-elided")

        # Rule 2: intra-block dead intermediate defines; Rule 3:
        # duplicate invalidates.
        for block in function.blocks:
            self._elide_in_block(block)

    def _elide_in_block(self, block: ir.BasicBlock) -> None:
        last_define: Dict[Tuple, ir.RuntimeCall] = {}
        last_invalidate: Dict[Tuple, ir.RuntimeCall] = {}
        doomed: List[ir.RuntimeCall] = []
        for instruction in block.instructions:
            if isinstance(instruction, ir.RuntimeCall):
                name = instruction.runtime_name
                slot = _message_slot(instruction)
                if slot is None:
                    if name in self.CHECK_NAMES:
                        last_define.clear()
                        last_invalidate.clear()
                    continue
                if name == self.DEFINE:
                    previous = last_define.get(slot)
                    if previous is not None:
                        # No check observed the earlier define: dead.
                        doomed.append(previous)
                        self.bump("intermediate-defines-elided")
                    last_define[slot] = instruction
                    last_invalidate.pop(slot, None)
                elif name in self.CHECK_NAMES:
                    last_define.pop(slot, None)
                    last_invalidate.pop(slot, None)
                elif name == self.INVALIDATE:
                    previous = last_invalidate.get(slot)
                    if previous is not None:
                        doomed.append(instruction)
                        self.bump("duplicate-invalidates-elided")
                        continue
                    last_invalidate[slot] = instruction
                    last_define.pop(slot, None)
            elif isinstance(instruction, (ir.Call, ir.ICall, ir.Syscall,
                                          ir.MemCopy, ir.MemSet)):
                # A call might check remotely: intermediate values become
                # observable; reset tracking.
                last_define.clear()
                last_invalidate.clear()
        for call in doomed:
            if call.block is block:
                block.remove(call)
