"""Pass manager for the instrumentation pipeline.

Mirrors LLVM's legacy pass manager at module granularity: passes run in
order, may rewrite the module in place, and report statistics (number
of checks inserted, messages elided, calls devirtualized...) that the
ablation benchmarks aggregate.
"""

from __future__ import annotations

from typing import Dict, List

from repro.compiler import ir


class ModulePass:
    """Base class: transforms or analyzes a whole module."""

    name = "pass"

    def __init__(self) -> None:
        self.stats: Dict[str, int] = {}

    def bump(self, key: str, amount: int = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + amount

    def run(self, module: ir.Module) -> None:
        raise NotImplementedError


class PassManager:
    """Runs a pipeline of module passes and collects their statistics."""

    def __init__(self, passes: List[ModulePass]) -> None:
        self.passes = list(passes)

    def run(self, module: ir.Module) -> Dict[str, Dict[str, int]]:
        """Run every pass in order; returns {pass name: stats}."""
        results: Dict[str, Dict[str, int]] = {}
        for pass_ in self.passes:
            pass_.run(module)
            module.verify()
            results[pass_.name] = dict(pass_.stats)
        return results
