"""Memory-safety instrumentation pass (paper section 4.2).

Pairs with :class:`repro.policies.memory_safety.MemorySafetyPolicy`:

* ``malloc`` → ``Allocation-Create`` after the allocation;
* ``realloc`` → ``Allocation-Extend``;
* ``free`` → ``Allocation-Destroy`` before the deallocation;
* stack ``alloca`` → ``Allocation-Create`` at frame entry and
  ``Allocation-Destroy-All`` before every return;
* every ``load``/``store`` through a non-trivially-safe pointer →
  ``Allocation-Check`` on the accessed address.

Accesses through pointers that provably point at a live local slot
(a direct, non-escaping ``alloca`` reference) are skipped — the static
analogue of the spatial checks a production system elides.
"""

from __future__ import annotations

from repro.compiler import ir
from repro.compiler.analysis import EscapeAnalysis
from repro.compiler.passes.base import ModulePass
from repro.compiler.types import I64


class MemorySafetyPass(ModulePass):
    """Insert ``hq_allocation_*`` runtime calls."""

    name = "memory-safety"

    def __init__(self, check_all_accesses: bool = False) -> None:
        super().__init__()
        #: When True, even provably-safe local accesses are checked
        #: (useful for measuring the elision benefit).
        self.check_all_accesses = check_all_accesses

    def run(self, module: ir.Module) -> None:
        for function in module.functions.values():
            if function.is_declaration:
                continue
            self._run_on_function(function)

    def _run_on_function(self, function: ir.Function) -> None:
        escape = EscapeAnalysis(function)
        allocas = [i for i in function.instructions()
                   if isinstance(i, ir.Alloca)]

        # Stack frame lifetime.
        for alloca in allocas:
            size = max(alloca.allocated_type.size(), 8)
            block = alloca.block
            block.insert_after(alloca, ir.RuntimeCall(
                "hq_allocation_create", [alloca, ir.Constant(size, I64)]))
            self.bump("stack-creates")
        if allocas:
            for block in function.blocks:
                terminator = block.terminator
                if isinstance(terminator, ir.Ret):
                    for alloca in allocas:
                        size = max(alloca.allocated_type.size(), 8)
                        block.insert_before(terminator, ir.RuntimeCall(
                            "hq_allocation_destroy_all",
                            [alloca, ir.Constant(size, I64)]))
                        self.bump("stack-destroys")

        for block in list(function.blocks):
            for instruction in list(block.instructions):
                if isinstance(instruction, ir.Malloc):
                    block.insert_after(instruction, ir.RuntimeCall(
                        "hq_allocation_create",
                        [instruction, instruction.size]))
                    self.bump("heap-creates")
                elif isinstance(instruction, ir.Realloc):
                    block.insert_after(instruction, ir.RuntimeCall(
                        "hq_allocation_extend",
                        [instruction.pointer, instruction,
                         instruction.size]))
                    self.bump("heap-extends")
                elif isinstance(instruction, ir.Free):
                    block.insert_before(instruction, ir.RuntimeCall(
                        "hq_allocation_destroy", [instruction.pointer]))
                    self.bump("heap-destroys")
                elif isinstance(instruction, (ir.Load, ir.Store)):
                    if self._needs_check(escape, instruction):
                        block.insert_before(instruction, ir.RuntimeCall(
                            "hq_allocation_check", [instruction.pointer]))
                        self.bump("access-checks")

    def _needs_check(self, escape: EscapeAnalysis,
                     access: ir.Instruction) -> bool:
        if self.check_all_accesses:
            return True
        pointer = access.pointer
        # Direct access to a local slot whose address never escapes is
        # statically in bounds and alive.
        if isinstance(pointer, ir.Alloca) and not escape.may_escape(pointer):
            return False
        return True
