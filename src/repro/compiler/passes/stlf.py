"""Store-to-load forwarding over control-flow pointers (section 4.1.4).

A field-sensitive optimization: when a checked load of a control-flow
pointer is dominated by a store (or a previous checked load) of the
same location, and the location cannot have changed in between, the
later ``Pointer-Check`` is redundant — the verifier already knows the
value — and is removed.

Soundness conditions (mirroring the paper's exclusion list): the slot
must be a non-escaping ``alloca`` (escape analysis), accesses must not
be volatile or atomic, the enclosing function must not be
``returns_twice``, and no call, indirect call, or block memory
operation may intervene between the def and the use (any of those could
clobber the slot through an alias we can't see — the conservative
aliasing rule).

The inter-procedural variant the paper describes (canonical remote
checked loads) is modelled by the *recursion guard*: when a function is
optimized inter-procedurally, ``hq_stlf_guard_enter``/``exit`` runtime
calls bracket its body, and a re-entry while the guard is set
terminates the program (the static analysis assumed no mutual
recursion; section 4.1.4 notes no guard fails across all benchmarks).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compiler import ir
from repro.compiler.analysis import EscapeAnalysis
from repro.compiler.cfg import DominatorTree
from repro.compiler.dataflow import may_clobber_memory, slot_key
from repro.compiler.passes.base import ModulePass

#: Back-compat aliases: the slot model and aliasing rule moved to
#: :mod:`repro.compiler.dataflow` so the elision pass and the lint
#: auditor share one definition with this pass.
_slot_key = slot_key
_clobbers = may_clobber_memory


class StoreToLoadForwardingPass(ModulePass):
    """Remove checks on loads forwardable from a dominating def."""

    name = "stlf"

    def __init__(self, interprocedural: bool = False) -> None:
        super().__init__()
        self.interprocedural = interprocedural

    def run(self, module: ir.Module) -> None:
        for function in module.functions.values():
            if function.is_declaration or function.returns_twice:
                continue
            self._run_on_function(function)

    def _run_on_function(self, function: ir.Function) -> None:
        escape = EscapeAnalysis(function)
        dom = DominatorTree(function)

        # Collect candidate defs: stores to forwardable slots, keyed by
        # slot, with their position.
        defs: Dict[Tuple, List[ir.Store]] = {}
        for block in function.blocks:
            for instruction in block.instructions:
                if isinstance(instruction, ir.Store) and not instruction.volatile \
                        and not instruction.atomic:
                    key = _slot_key(instruction.pointer)
                    if key is None:
                        continue
                    root = self._root_alloca(instruction.pointer)
                    if root is not None and escape.may_escape(root):
                        continue
                    defs.setdefault(key, []).append(instruction)

        # For each checked load, try to forward from a dominating store.
        for block in list(function.blocks):
            for instruction in list(block.instructions):
                if not (isinstance(instruction, ir.RuntimeCall)
                        and instruction.runtime_name == "hq_pointer_check"):
                    continue
                load = instruction.meta.get("checked_load")
                if not isinstance(load, ir.Load) or load.volatile or load.atomic:
                    continue
                key = _slot_key(load.pointer)
                if key is None or key not in defs:
                    continue
                if any(self._forwardable(dom, function, store, load)
                       for store in defs[key]):
                    block.remove(instruction)
                    self.bump("checks-forwarded")

    def _root_alloca(self, pointer: ir.Value) -> Optional[ir.Alloca]:
        current = pointer
        while isinstance(current, (ir.Gep, ir.Cast)):
            current = current.pointer if isinstance(current, ir.Gep) else current.value
        return current if isinstance(current, ir.Alloca) else None

    def _forwardable(self, dom: DominatorTree, function: ir.Function,
                     store: ir.Store, load: ir.Load) -> bool:
        """Store dominates load with no possible clobber in between."""
        sblock, lblock = store.block, load.block
        if sblock is None or lblock is None:
            return False
        if not dom.dominates(sblock, lblock):
            return False
        if sblock is lblock:
            instructions = sblock.instructions
            si, li = instructions.index(store), instructions.index(load)
            if si > li:
                return False
            return not any(_clobbers(i) for i in instructions[si + 1:li])
        # Cross-block: no clobbers after the store in its block, in the
        # load's block before the load, nor in any block on a path in
        # between (conservatively: any block dominated by the store's
        # block that reaches the load's block).
        tail = sblock.instructions[sblock.instructions.index(store) + 1:]
        head = lblock.instructions[:lblock.instructions.index(load)]
        if any(_clobbers(i) for i in tail + head):
            return False
        for block in function.blocks:
            if block in (sblock, lblock):
                continue
            if dom.dominates(sblock, block) and self._reaches(block, lblock):
                if any(_clobbers(i) for i in block.instructions):
                    return False
        return True

    def _reaches(self, source: ir.BasicBlock, target: ir.BasicBlock) -> bool:
        seen = set()
        worklist = [source]
        while worklist:
            block = worklist.pop()
            if block is target:
                return True
            if id(block) in seen:
                continue
            seen.add(id(block))
            worklist.extend(block.successors)
        return False
