"""Initial lowering: insert control-flow-pointer messaging (section 4.1.4).

Runs before program optimization.  Walks every operation in the IR and
inserts runtime messaging calls:

* a ``Pointer-Define`` after every store of a (possibly laundered)
  function pointer, vtable pointer, or vtable-table pointer;
* a ``Pointer-Check`` after every load whose value may be used as an
  indirect-call target;
* lifetime management: ``Pointer-Block-Invalidate`` for stack slots
  that held control-flow pointers, at every function exit;
* ``jmp_buf`` handling: the internal pointer stored by ``setjmp`` is
  defined on creation and checked by ``longjmp`` (section 4.1.3 lists
  it among protected function pointers).

Function-pointer detection follows the paper's two rules (implemented
in :mod:`repro.compiler.analysis`): a pointer is treated as a function
pointer if it is ever defined from a function-pointer-typed value —
including through casts and φ-nodes — or if other uses of its original
value are cast to function-pointer type.
"""

from __future__ import annotations

from typing import Set

from repro.compiler import ir
from repro.compiler.analysis import (pointer_feeds_icall,
                                     store_defines_function_pointer)
from repro.compiler.passes.base import ModulePass
from repro.compiler.types import I64, is_function_pointer


class CFIInitialLoweringPass(ModulePass):
    """Insert define/check/invalidate messaging calls."""

    name = "cfi-initial"

    def run(self, module: ir.Module) -> None:
        for function in module.functions.values():
            if function.is_declaration:
                continue
            self._run_on_function(function)

    def _run_on_function(self, function: ir.Function) -> None:
        protected_allocas: Set[ir.Alloca] = set()
        for block in list(function.blocks):
            for instruction in list(block.instructions):
                if isinstance(instruction, ir.Store):
                    if store_defines_function_pointer(function, instruction):
                        block.insert_after(instruction, ir.RuntimeCall(
                            "hq_pointer_define",
                            [instruction.pointer, instruction.value]))
                        self.bump("defines")
                        root = self._alloca_root(instruction.pointer)
                        if root is not None:
                            protected_allocas.add(root)
                elif isinstance(instruction, ir.Load):
                    if self._load_needs_check(function, instruction):
                        check = ir.RuntimeCall(
                            "hq_pointer_check",
                            [instruction.pointer, instruction])
                        check.meta["checked_load"] = instruction
                        block.insert_after(instruction, check)
                        self.bump("checks")
                elif isinstance(instruction, ir.Setjmp):
                    block.insert_after(instruction, ir.RuntimeCall(
                        "hq_setjmp_hook", [instruction.buf]))
                    self.bump("setjmp-hooks")
                elif isinstance(instruction, ir.Longjmp):
                    block.insert_before(instruction, ir.RuntimeCall(
                        "hq_longjmp_hook", [instruction.buf]))
                    self.bump("longjmp-hooks")

        if protected_allocas:
            self._invalidate_on_exit(function, protected_allocas)

    def _load_needs_check(self, function: ir.Function, load: ir.Load) -> bool:
        """Whether the loaded value is (or may become) an icall target."""
        if is_function_pointer(load.type):
            # Loads of declared function-pointer type are always checked:
            # the value may escape to a call we cannot see locally.
            return True
        return pointer_feeds_icall(function, load)

    def _alloca_root(self, pointer: ir.Value) -> ir.Alloca:
        """The alloca ultimately addressed by ``pointer``, if any."""
        current = pointer
        while isinstance(current, (ir.Gep, ir.Cast)):
            current = current.pointer if isinstance(current, ir.Gep) else current.value
        return current if isinstance(current, ir.Alloca) else None

    def _invalidate_on_exit(self, function: ir.Function,
                            allocas: Set[ir.Alloca]) -> None:
        """Stack slots that held control-flow pointers die at returns."""
        for block in function.blocks:
            terminator = block.terminator
            if not isinstance(terminator, ir.Ret):
                continue
            for alloca in allocas:
                size = max(alloca.allocated_type.size(), 8)
                block.insert_before(terminator, ir.RuntimeCall(
                    "hq_pointer_block_invalidate",
                    [alloca, ir.Constant(size, I64)]))
                self.bump("stack-invalidates")
