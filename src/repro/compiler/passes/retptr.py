"""Backward-edge (return pointer) instrumentation (section 4.1.6).

The HQ-CFI-RetPtr variant protects return addresses with messages: a
``Pointer-Define`` of the return-address slot in the function prologue
and a ``Pointer-Check-Invalidate`` in the epilogue.  The pass selects
functions that *may write to memory*, are *known to return*, *contain
stack allocations*, and are *not always tail called* — any other
function either cannot corrupt its own return slot or has no frame
outliving anything corruptible.

The runtime entry points take no IR arguments: the return-address slot
address is machine state (the slot the call sequence just pushed),
which the runtime obtains from the interpreter's call stack — exactly
as the real instrumentation reads the frame's return-address slot.
"""

from __future__ import annotations

from repro.compiler import ir
from repro.compiler.analysis import needs_return_pointer_protection
from repro.compiler.passes.base import ModulePass


class ReturnPointerPass(ModulePass):
    """Insert prologue defines and epilogue check-invalidates."""

    name = "retptr"

    def run(self, module: ir.Module) -> None:
        for function in module.functions.values():
            if not needs_return_pointer_protection(function):
                continue
            self.bump("functions-instrumented")
            entry = function.entry
            # Prologue: define after phis (the return address was just
            # pushed by the caller's call sequence).
            index = 0
            while index < len(entry.instructions) and \
                    isinstance(entry.instructions[index], ir.Phi):
                index += 1
            entry.insert(index, ir.RuntimeCall("hq_retptr_define", []))
            # Epilogue: check-invalidate immediately before each return.
            for block in function.blocks:
                terminator = block.terminator
                if isinstance(terminator, ir.Ret):
                    block.insert_before(terminator, ir.RuntimeCall(
                        "hq_retptr_check_invalidate", []))
                    self.bump("epilogue-checks")
