"""System-call synchronization message placement (sections 2.2, 3.2).

Before every system-call instruction, a ``SYSCALL`` message must be
sent so the verifier can confirm all outstanding messages were
processed and unblock the paused call.  To pipeline the message with
the syscall itself, the pass places it at the *earliest suitable
point*, found with graph dominators: the program point must

1. dominate the system call (it always executes first on any path
   reaching the call),
2. be post-dominated by the system call (it never executes unless the
   call follows, under non-exceptional control flow), and
3. not precede any other message or function call that also dominates
   the system call (those could enqueue later messages, which the
   verifier must also have processed).

The implementation walks backward from the syscall through the chain of
dominating, post-dominated blocks, stopping at the most recent call or
message — the earliest point satisfying all three conditions.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.compiler import ir
from repro.compiler.cfg import DominatorTree, PostDominatorTree
from repro.compiler.passes.base import ModulePass

#: Instructions that produce messages or may produce them via callees.
_BARRIERS = (ir.Call, ir.ICall, ir.RuntimeCall, ir.Syscall,
             ir.Setjmp, ir.Longjmp)


class SyscallSyncPass(ModulePass):
    """Insert ``hq_syscall`` messages before system calls."""

    name = "syscall-sync"

    def run(self, module: ir.Module) -> None:
        for function in module.functions.values():
            if function.is_declaration:
                continue
            dom = DominatorTree(function)
            pdom = PostDominatorTree(function)
            syscalls = [i for i in function.instructions()
                        if isinstance(i, ir.Syscall)]
            for syscall in syscalls:
                block, index = self._placement(function, dom, pdom, syscall)
                block.insert(index, ir.RuntimeCall(
                    "hq_syscall", [ir.Constant(syscall.number)]))
                self.bump("sync-messages")

    def _placement(self, function: ir.Function, dom: DominatorTree,
                   pdom: PostDominatorTree,
                   syscall: ir.Syscall) -> Tuple[ir.BasicBlock, int]:
        """Find the earliest suitable (block, index) for the message."""
        block = syscall.block
        assert block is not None
        index = block.instructions.index(syscall)
        # Walk backward within the block: stop just after the most
        # recent barrier (condition 3).
        while index > 0:
            previous = block.instructions[index - 1]
            if isinstance(previous, _BARRIERS):
                return block, index
            if isinstance(previous, ir.Phi):
                return block, index
            index -= 1
        # Reached the block head: try to hoist into the immediate
        # dominator, provided the syscall's block post-dominates it
        # (condition 2), it still dominates the syscall (condition 1,
        # trivially true for a dominator), and the hoist preserves
        # execution frequency — the dominator must fall through
        # unconditionally into this block, or it could be a loop header
        # that runs (and would send the message) many times per syscall.
        idom = dom.idom.get(block)
        if idom is not None and idom is not block and \
                idom.successors == [block] and \
                pdom.post_dominates(block, idom):
            hoisted = self._placement_in_block(idom)
            if hoisted is not None:
                self.bump("sync-messages-hoisted")
                return hoisted
        return block, 0

    def _placement_in_block(self, block: ir.BasicBlock) -> Optional[Tuple[ir.BasicBlock, int]]:
        """Latest barrier-free position in ``block`` (before terminator)."""
        terminator = block.terminator
        if terminator is None:
            return None
        index = block.instructions.index(terminator)
        while index > 0:
            previous = block.instructions[index - 1]
            if isinstance(previous, _BARRIERS) or isinstance(previous, ir.Phi):
                break
            index -= 1
        return block, index
