"""Function inlining.

The paper's runtime library can be "inlined directly into monitored
programs, which reduces execution overhead at the cost of increased
size" (section 3.2); inlining is also what creates the duplicate-
destructor-invalidate pattern the message-elision pass cleans up
(section 4.1.4).  This pass implements the transformation for the mini
IR: direct calls to small, single-block, non-recursive functions are
replaced by a copy of the callee's body with parameters substituted.

Restricting to single-block callees keeps the clone a straight splice
(no CFG surgery, no φ for the return value) while covering the
functions that matter — accessors, arithmetic helpers, and the
messaging runtime's entry points.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.compiler import ir
from repro.compiler.passes.base import ModulePass

#: Default ceiling on inlinable callee size, in instructions.
DEFAULT_THRESHOLD = 12


def _clone_instruction(instruction: ir.Instruction,
                       mapping: Dict[int, ir.Value]) -> ir.Instruction:
    """Copy ``instruction`` with operands substituted via ``mapping``."""

    def sub(value: ir.Value) -> ir.Value:
        return mapping.get(id(value), value)

    if isinstance(instruction, ir.Alloca):
        return ir.Alloca(instruction.allocated_type)
    if isinstance(instruction, ir.Load):
        return ir.Load(sub(instruction.pointer),
                       volatile=instruction.volatile,
                       atomic=instruction.atomic)
    if isinstance(instruction, ir.Store):
        return ir.Store(sub(instruction.value), sub(instruction.pointer),
                        volatile=instruction.volatile,
                        atomic=instruction.atomic)
    if isinstance(instruction, ir.Gep):
        return ir.Gep(sub(instruction.pointer), field=instruction.field,
                      index=(sub(instruction.index)
                             if instruction.index is not None else None))
    if isinstance(instruction, ir.Cast):
        return ir.Cast(sub(instruction.value), instruction.type)
    if isinstance(instruction, ir.BinOp):
        return ir.BinOp(instruction.op, sub(instruction.lhs),
                        sub(instruction.rhs))
    if isinstance(instruction, ir.Cmp):
        return ir.Cmp(instruction.op, sub(instruction.lhs),
                      sub(instruction.rhs))
    if isinstance(instruction, ir.Select):
        return ir.Select(sub(instruction.cond), sub(instruction.if_true),
                         sub(instruction.if_false))
    if isinstance(instruction, ir.Call):
        return ir.Call(instruction.callee,
                       [sub(a) for a in instruction.args],
                       tail=False)
    if isinstance(instruction, ir.ICall):
        return ir.ICall(sub(instruction.target),
                        [sub(a) for a in instruction.args],
                        instruction.signature)
    if isinstance(instruction, ir.RuntimeCall):
        return ir.RuntimeCall(instruction.runtime_name,
                              [sub(a) for a in instruction.args],
                              instruction.type)
    if isinstance(instruction, ir.Malloc):
        return ir.Malloc(sub(instruction.size))
    if isinstance(instruction, ir.Free):
        return ir.Free(sub(instruction.pointer))
    if isinstance(instruction, ir.Realloc):
        return ir.Realloc(sub(instruction.pointer), sub(instruction.size))
    if isinstance(instruction, ir.MemCopy):
        return ir.MemCopy(sub(instruction.dst), sub(instruction.src),
                          sub(instruction.size), move=instruction.move,
                          element_type=instruction.element_type,
                          decayed=instruction.decayed)
    if isinstance(instruction, ir.MemSet):
        return ir.MemSet(sub(instruction.dst), sub(instruction.value),
                         sub(instruction.size))
    if isinstance(instruction, ir.Syscall):
        return ir.Syscall(instruction.number,
                          [sub(a) for a in instruction.args])
    raise NotImplementedError(
        f"cannot clone {instruction.opname} for inlining")


class InlinerPass(ModulePass):
    """Inline small single-block callees into their direct call sites."""

    name = "inliner"

    def __init__(self, threshold: int = DEFAULT_THRESHOLD) -> None:
        super().__init__()
        self.threshold = threshold

    def run(self, module: ir.Module) -> None:
        for function in list(module.functions.values()):
            if function.is_declaration:
                continue
            self._run_on_function(function)

    def _inlinable(self, caller: ir.Function,
                   callee: ir.Function) -> bool:
        if callee.is_declaration or callee is caller:
            return False
        if len(callee.blocks) != 1:
            return False
        body = callee.entry.instructions
        if len(body) > self.threshold:
            return False
        if not isinstance(body[-1], ir.Ret):
            return False
        # Self-recursive single-block callees cannot exist (a call to
        # itself plus a ret would still be inlinable but explode); any
        # call back to the caller would also loop the worklist.
        for instruction in body:
            if isinstance(instruction, ir.Call) and \
                    instruction.callee in (caller, callee):
                return False
            if isinstance(instruction, (ir.Setjmp, ir.Longjmp, ir.Phi)):
                return False
        return True

    def _run_on_function(self, function: ir.Function) -> None:
        changed = True
        while changed:
            changed = False
            for block in list(function.blocks):
                for instruction in list(block.instructions):
                    if isinstance(instruction, ir.Call) and \
                            self._inlinable(function, instruction.callee):
                        self._inline_site(function, block, instruction)
                        self.bump("calls-inlined")
                        changed = True
                        break
                if changed:
                    break

    def _inline_site(self, function: ir.Function, block: ir.BasicBlock,
                     call: ir.Call) -> None:
        callee = call.callee
        mapping: Dict[int, ir.Value] = {
            id(param): argument
            for param, argument in zip(callee.params, call.args)}

        clones: List[ir.Instruction] = []
        return_value: Optional[ir.Value] = None
        for instruction in callee.entry.instructions:
            if isinstance(instruction, ir.Ret):
                if instruction.value is not None:
                    return_value = mapping.get(id(instruction.value),
                                               instruction.value)
                break
            clone = _clone_instruction(instruction, mapping)
            mapping[id(instruction)] = clone
            clones.append(clone)

        index = block.instructions.index(call)
        block.remove(call)
        for offset, clone in enumerate(clones):
            block.insert(index + offset, clone)

        # Rewire uses of the call's result.
        replacement = (return_value if return_value is not None
                       else ir.Constant(0))
        for user in function.instructions():
            user.replace_operand(call, replacement)
