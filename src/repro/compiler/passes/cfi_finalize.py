"""Final lowering: block-op instrumentation and messaging optimizations.

Runs after program optimization (section 4.1.4, "Final Lowering"):

* **Block memory operations.**  ``memcpy``/``memmove`` get a
  ``Pointer-Block-Copy`` message, ``realloc`` a ``Pointer-Block-Move``,
  and ``free`` a ``Pointer-Block-Invalidate`` — unless *strict subtype
  checking* proves the copied composite type contains no control-flow
  pointers.  Strict checking is defeated when a composite holding
  function pointers was passed inter-procedurally as a decayed raw
  pointer (four SPEC benchmarks do this); the built-in *allowlist*
  (``module.block_op_allowlist``) forces instrumentation inside the
  named functions, and ``strict_subtype_checking=False`` conservatively
  instruments every block operation instead.

* **Store-to-load forwarding** (:class:`StoreToLoadForwardingPass`) and
  **message elision** (:class:`MessageElisionPass`) live in their own
  passes but belong to this stage of the pipeline.
"""

from __future__ import annotations

from repro.compiler import ir
from repro.compiler.passes.base import ModulePass
from repro.compiler.types import contains_function_pointer


class CFIFinalLoweringPass(ModulePass):
    """Insert block-operation messaging with strict subtype checking."""

    name = "cfi-finalize"

    def __init__(self, strict_subtype_checking: bool = True) -> None:
        super().__init__()
        self.strict_subtype_checking = strict_subtype_checking

    def run(self, module: ir.Module) -> None:
        for function in module.functions.values():
            if function.is_declaration:
                continue
            allowlisted = function.name in module.block_op_allowlist
            for block in list(function.blocks):
                for instruction in list(block.instructions):
                    if isinstance(instruction, ir.MemCopy):
                        self._lower_memcopy(block, instruction, allowlisted)
                    elif isinstance(instruction, ir.MemSet):
                        self._lower_memset(block, instruction, allowlisted)
                    elif isinstance(instruction, ir.Realloc):
                        block.insert_after(instruction, ir.RuntimeCall(
                            "hq_realloc_hook",
                            [instruction.pointer, instruction,
                             instruction.size]))
                        self.bump("realloc-hooks")
                    elif isinstance(instruction, ir.Free):
                        block.insert_before(instruction, ir.RuntimeCall(
                            "hq_free_hook", [instruction.pointer]))
                        self.bump("free-hooks")

    def _should_instrument(self, op: ir.MemCopy, allowlisted: bool) -> bool:
        if not self.strict_subtype_checking:
            return True
        if allowlisted:
            # The allowlist always instruments block operations in the
            # named functions, recovering the decayed-pointer cases.
            return True
        if op.element_type is None:
            # Unknown element type: conservatively instrument.
            return True
        # Strict subtype checking: skip statically clean types.  This is
        # exactly where a decayed composite (op.decayed) slips through.
        return contains_function_pointer(op.element_type)

    def _lower_memcopy(self, block: ir.BasicBlock, op: ir.MemCopy,
                       allowlisted: bool) -> None:
        if not self._should_instrument(op, allowlisted):
            self.bump("block-ops-elided")
            return
        block.insert_after(op, ir.RuntimeCall(
            "hq_pointer_block_copy", [op.src, op.dst, op.size]))
        self.bump("block-copies")

    def _lower_memset(self, block: ir.BasicBlock, op: ir.MemSet,
                      allowlisted: bool) -> None:
        # Overwriting a range destroys any pointers it held.
        block.insert_after(op, ir.RuntimeCall(
            "hq_pointer_block_invalidate", [op.dst, op.size]))
        self.bump("block-invalidates")
