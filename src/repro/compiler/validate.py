"""IR validator: SSA and CFG well-formedness checks.

``Module.verify()`` checks only block termination (cheap, runs after
every pass).  This module performs the deeper checks a compiler needs
when developing new passes:

* every instruction operand is *available* at its use: a constant,
  global, argument, or an instruction whose defining block dominates
  the use (with the φ exception: incoming values need only dominate the
  corresponding predecessor's exit);
* φ-nodes appear only at block heads, and their incoming blocks are
  exactly the CFG predecessors;
* branch targets belong to the same function;
* instructions appear in exactly one block, and ``instruction.block``
  back-references are consistent.

Two modes:

* **raising** (default): raises :class:`ValidationError` at the first
  violation, with a path to the offending instruction.  The
  pass-pipeline tests run this over every instrumented module, so a
  miscompiling pass fails loudly rather than corrupting an experiment.
* **collecting** (``collect=True``): returns *every* violation as a
  ``List[ValidationError]`` instead of stopping at the first, so the
  lint CLI can report all defects of a module in one run.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.compiler import ir
from repro.compiler.cfg import DominatorTree, predecessors, reverse_postorder


class ValidationError(Exception):
    """The module violates an SSA/CFG invariant."""

    def __init__(self, function: Optional[ir.Function],
                 instruction: Optional[ir.Instruction],
                 detail: str) -> None:
        if function is None and instruction is None:
            super().__init__(detail)
        else:
            block = instruction.block if instruction is not None else None
            location = (f"{function.name if function is not None else '?'}:"
                        f"{block.name if block is not None else '?'}:"
                        f"%{instruction.name if instruction is not None else '?'}")
            super().__init__(f"{location}: {detail}")
        self.function = function
        self.instruction = instruction
        self.detail = detail


#: A violation sink: raises in strict mode, accumulates in collect mode.
_Emit = Callable[[ValidationError], None]


def _is_always_available(value: ir.Value) -> bool:
    return isinstance(value, (ir.Constant, ir.GlobalVariable,
                              ir.FunctionRef, ir.Argument))


def validate_function(function: ir.Function,
                      collect: bool = False) -> Optional[List[ValidationError]]:
    """Validate one function; no-op for declarations.

    With ``collect=True``, returns every violation instead of raising
    at the first one.
    """
    errors: List[ValidationError] = []

    def emit(error: ValidationError) -> None:
        if collect:
            errors.append(error)
        else:
            raise error

    if not function.is_declaration:
        _check_block_membership(function, emit)
        _check_branch_targets(function, emit)
        _check_phi_placement(function, emit)
        _check_ssa_dominance(function, emit)
    return errors if collect else None


def validate_module(module: ir.Module,
                    collect: bool = False) -> Optional[List[ValidationError]]:
    """Validate every function (plus the cheap structural checks).

    With ``collect=True``, returns the full list of violations (empty
    when the module is well-formed) instead of raising at the first.
    """
    if not collect:
        module.verify()
        for function in module.functions.values():
            validate_function(function)
        return None
    errors: List[ValidationError] = []
    try:
        module.verify()
    except ValueError as structural:
        errors.append(ValidationError(None, None, str(structural)))
    for function in module.functions.values():
        errors.extend(validate_function(function, collect=True) or [])
    return errors


def _check_block_membership(function: ir.Function, emit: _Emit) -> None:
    seen: Set[int] = set()
    for block in function.blocks:
        for instruction in block.instructions:
            if id(instruction) in seen:
                emit(ValidationError(function, instruction,
                                     "appears in more than one position"))
                continue
            seen.add(id(instruction))
            if instruction.block is not block:
                emit(ValidationError(
                    function, instruction,
                    f"block back-reference points at "
                    f"{getattr(instruction.block, 'name', None)!r}, "
                    f"found in {block.name!r}"))


def _check_branch_targets(function: ir.Function, emit: _Emit) -> None:
    own_blocks = set(map(id, function.blocks))
    for block in function.blocks:
        terminator = block.terminator
        for successor in block.successors:
            if id(successor) not in own_blocks:
                emit(ValidationError(
                    function, terminator,
                    f"branch target {successor.name!r} belongs to "
                    f"another function"))


def _check_phi_placement(function: ir.Function, emit: _Emit) -> None:
    preds = predecessors(function)
    reachable = set(reverse_postorder(function))
    for block in function.blocks:
        past_head = False
        for instruction in block.instructions:
            if isinstance(instruction, ir.Phi):
                if past_head:
                    emit(ValidationError(function, instruction,
                                         "phi after non-phi instruction"))
                if block not in reachable:
                    continue
                incoming_blocks = {id(b) for _, b in instruction.incoming}
                pred_blocks = {id(b) for b in preds[block]}
                missing = pred_blocks - incoming_blocks
                if missing:
                    names = [b.name for b in preds[block]
                             if id(b) in missing]
                    emit(ValidationError(
                        function, instruction,
                        f"no incoming value for predecessor(s) {names}"))
            else:
                past_head = True


def _check_ssa_dominance(function: ir.Function, emit: _Emit) -> None:
    dom = DominatorTree(function)
    reachable = set(dom.order)
    defined_in: Dict[int, ir.BasicBlock] = {}
    positions: Dict[int, int] = {}
    for block in function.blocks:
        for index, instruction in enumerate(block.instructions):
            defined_in[id(instruction)] = block
            positions[id(instruction)] = index

    def available(value: ir.Value, use_block: ir.BasicBlock,
                  use_index: int) -> bool:
        if _is_always_available(value):
            return True
        if not isinstance(value, ir.Instruction):
            return False
        def_block = defined_in.get(id(value))
        if def_block is None:
            return False  # defined in another function (or nowhere)
        if def_block is use_block:
            return positions[id(value)] < use_index
        return dom.dominates(def_block, use_block)

    for block in function.blocks:
        if block not in reachable:
            continue
        for index, instruction in enumerate(block.instructions):
            if isinstance(instruction, ir.Phi):
                for value, pred in instruction.incoming:
                    if _is_always_available(value):
                        continue
                    if not isinstance(value, ir.Instruction):
                        emit(ValidationError(
                            function, instruction,
                            f"phi incoming {value!r} is not a value"))
                        continue
                    def_block = defined_in.get(id(value))
                    if def_block is None or (pred in reachable and
                                             not dom.dominates(def_block,
                                                               pred)):
                        emit(ValidationError(
                            function, instruction,
                            f"incoming %{value.name} does not dominate "
                            f"predecessor {pred.name}"))
                continue
            for operand in instruction.operands:
                if not available(operand, block, index):
                    name = getattr(operand, "name", repr(operand))
                    emit(ValidationError(
                        function, instruction,
                        f"operand %{name} does not dominate this use"))
