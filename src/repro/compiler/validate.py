"""IR validator: SSA and CFG well-formedness checks.

``Module.verify()`` checks only block termination (cheap, runs after
every pass).  This module performs the deeper checks a compiler needs
when developing new passes:

* every instruction operand is *available* at its use: a constant,
  global, argument, or an instruction whose defining block dominates
  the use (with the φ exception: incoming values need only dominate the
  corresponding predecessor's exit);
* φ-nodes appear only at block heads, and their incoming blocks are
  exactly the CFG predecessors;
* branch targets belong to the same function;
* instructions appear in exactly one block, and ``instruction.block``
  back-references are consistent.

Raises :class:`ValidationError` with a path to the offending
instruction.  The pass-pipeline tests run it over every instrumented
module, so a miscompiling pass fails loudly rather than corrupting an
experiment.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.compiler import ir
from repro.compiler.cfg import DominatorTree, predecessors, reverse_postorder


class ValidationError(Exception):
    """The module violates an SSA/CFG invariant."""

    def __init__(self, function: ir.Function, instruction: ir.Instruction,
                 detail: str) -> None:
        location = (f"{function.name}:"
                    f"{instruction.block.name if instruction.block else '?'}:"
                    f"%{instruction.name}")
        super().__init__(f"{location}: {detail}")
        self.function = function
        self.instruction = instruction


def _is_always_available(value: ir.Value) -> bool:
    return isinstance(value, (ir.Constant, ir.GlobalVariable,
                              ir.FunctionRef, ir.Argument))


def validate_function(function: ir.Function) -> None:
    """Validate one function; no-op for declarations."""
    if function.is_declaration:
        return
    _check_block_membership(function)
    _check_branch_targets(function)
    _check_phi_placement(function)
    _check_ssa_dominance(function)


def validate_module(module: ir.Module) -> None:
    """Validate every function (plus the cheap structural checks)."""
    module.verify()
    for function in module.functions.values():
        validate_function(function)


def _check_block_membership(function: ir.Function) -> None:
    seen: Set[int] = set()
    for block in function.blocks:
        for instruction in block.instructions:
            if id(instruction) in seen:
                raise ValidationError(function, instruction,
                                      "appears in more than one position")
            seen.add(id(instruction))
            if instruction.block is not block:
                raise ValidationError(
                    function, instruction,
                    f"block back-reference points at "
                    f"{getattr(instruction.block, 'name', None)!r}, "
                    f"found in {block.name!r}")


def _check_branch_targets(function: ir.Function) -> None:
    own_blocks = set(map(id, function.blocks))
    for block in function.blocks:
        terminator = block.terminator
        for successor in block.successors:
            if id(successor) not in own_blocks:
                raise ValidationError(
                    function, terminator,
                    f"branch target {successor.name!r} belongs to "
                    f"another function")


def _check_phi_placement(function: ir.Function) -> None:
    preds = predecessors(function)
    reachable = set(reverse_postorder(function))
    for block in function.blocks:
        past_head = False
        for instruction in block.instructions:
            if isinstance(instruction, ir.Phi):
                if past_head:
                    raise ValidationError(function, instruction,
                                          "phi after non-phi instruction")
                if block not in reachable:
                    continue
                incoming_blocks = {id(b) for _, b in instruction.incoming}
                pred_blocks = {id(b) for b in preds[block]}
                missing = pred_blocks - incoming_blocks
                if missing:
                    names = [b.name for b in preds[block]
                             if id(b) in missing]
                    raise ValidationError(
                        function, instruction,
                        f"no incoming value for predecessor(s) {names}")
            else:
                past_head = True


def _check_ssa_dominance(function: ir.Function) -> None:
    dom = DominatorTree(function)
    reachable = set(dom.order)
    defined_in: Dict[int, ir.BasicBlock] = {}
    positions: Dict[int, int] = {}
    for block in function.blocks:
        for index, instruction in enumerate(block.instructions):
            defined_in[id(instruction)] = block
            positions[id(instruction)] = index

    def available(value: ir.Value, use_block: ir.BasicBlock,
                  use_index: int) -> bool:
        if _is_always_available(value):
            return True
        if not isinstance(value, ir.Instruction):
            return False
        def_block = defined_in.get(id(value))
        if def_block is None:
            return False  # defined in another function (or nowhere)
        if def_block is use_block:
            return positions[id(value)] < use_index
        return dom.dominates(def_block, use_block)

    for block in function.blocks:
        if block not in reachable:
            continue
        for index, instruction in enumerate(block.instructions):
            if isinstance(instruction, ir.Phi):
                for value, pred in instruction.incoming:
                    if _is_always_available(value):
                        continue
                    if not isinstance(value, ir.Instruction):
                        raise ValidationError(
                            function, instruction,
                            f"phi incoming {value!r} is not a value")
                    def_block = defined_in.get(id(value))
                    if def_block is None or (pred in reachable and
                                             not dom.dominates(def_block,
                                                               pred)):
                        raise ValidationError(
                            function, instruction,
                            f"incoming %{value.name} does not dominate "
                            f"predecessor {pred.name}")
                continue
            for operand in instruction.operands:
                if not available(operand, block, index):
                    name = getattr(operand, "name", repr(operand))
                    raise ValidationError(
                        function, instruction,
                        f"operand %{name} does not dominate this use")
