"""Textual IR printer.

Renders a module in an LLVM-flavoured syntax — for debugging
instrumentation passes, for golden-output tests, and for the curious.
The format is stable enough to assert against (tests do) but is not a
parsing format: there is deliberately no reader.

Example output::

    define i64 @main() {
    entry:
      %slot = alloca i64(i64)*
      store @handler, %slot
      %t = load %slot
      %r = icall %t(const 21) : i64(i64)
      ret %r
    }
"""

from __future__ import annotations

from typing import List

from repro.compiler import ir


def format_value(value: ir.Value) -> str:
    """Operand-position rendering of a value."""
    if isinstance(value, ir.Constant):
        return f"const {value.value}"
    if isinstance(value, ir.FunctionRef):
        return f"@{value.function.name}"
    if isinstance(value, ir.GlobalVariable):
        return f"@{value.name}"
    if isinstance(value, ir.Argument):
        return f"%{value.name}"
    if isinstance(value, ir.Instruction):
        return f"%{value.name}"
    return repr(value)


def format_instruction(instruction: ir.Instruction) -> str:
    """One-line rendering of an instruction."""
    v = format_value
    if isinstance(instruction, ir.Alloca):
        return f"%{instruction.name} = alloca {instruction.allocated_type!r}"
    if isinstance(instruction, ir.Load):
        flags = "".join(f" !{f}" for f in ("volatile", "atomic")
                        if getattr(instruction, f))
        return f"%{instruction.name} = load {v(instruction.pointer)}{flags}"
    if isinstance(instruction, ir.Store):
        return f"store {v(instruction.value)}, {v(instruction.pointer)}"
    if isinstance(instruction, ir.Gep):
        if instruction.field is not None:
            suffix = f".{instruction.field}"
        else:
            suffix = f"[{v(instruction.index)}]"
        return (f"%{instruction.name} = gep "
                f"{v(instruction.pointer)}{suffix}")
    if isinstance(instruction, ir.Cast):
        return (f"%{instruction.name} = cast {v(instruction.value)} "
                f"to {instruction.type!r}")
    if isinstance(instruction, ir.BinOp):
        return (f"%{instruction.name} = {instruction.op} "
                f"{v(instruction.lhs)}, {v(instruction.rhs)}")
    if isinstance(instruction, ir.Cmp):
        return (f"%{instruction.name} = cmp {instruction.op} "
                f"{v(instruction.lhs)}, {v(instruction.rhs)}")
    if isinstance(instruction, ir.Select):
        return (f"%{instruction.name} = select {v(instruction.cond)}, "
                f"{v(instruction.if_true)}, {v(instruction.if_false)}")
    if isinstance(instruction, ir.Phi):
        incoming = ", ".join(f"[{v(value)}, {block.name}]"
                             for value, block in instruction.incoming)
        return f"%{instruction.name} = phi {incoming}"
    if isinstance(instruction, ir.Br):
        return f"br {instruction.target.name}"
    if isinstance(instruction, ir.CondBr):
        return (f"br {v(instruction.cond)} ? {instruction.if_true.name} "
                f": {instruction.if_false.name}")
    if isinstance(instruction, ir.Ret):
        if instruction.value is None:
            return "ret"
        return f"ret {v(instruction.value)}"
    if isinstance(instruction, ir.Call):
        args = ", ".join(v(a) for a in instruction.args)
        tail = "tail " if instruction.tail else ""
        return (f"%{instruction.name} = {tail}call "
                f"@{instruction.callee.name}({args})")
    if isinstance(instruction, ir.ICall):
        args = ", ".join(v(a) for a in instruction.args)
        return (f"%{instruction.name} = icall {v(instruction.target)}"
                f"({args}) : {instruction.signature!r}")
    if isinstance(instruction, ir.RuntimeCall):
        args = ", ".join(v(a) for a in instruction.args)
        return (f"%{instruction.name} = rt.{instruction.runtime_name}"
                f"({args})")
    if isinstance(instruction, ir.Malloc):
        return f"%{instruction.name} = malloc {v(instruction.size)}"
    if isinstance(instruction, ir.Free):
        return f"free {v(instruction.pointer)}"
    if isinstance(instruction, ir.Realloc):
        return (f"%{instruction.name} = realloc {v(instruction.pointer)}, "
                f"{v(instruction.size)}")
    if isinstance(instruction, ir.MemCopy):
        kind = "memmove" if instruction.move else "memcpy"
        decayed = " !decayed" if instruction.decayed else ""
        return (f"{kind} {v(instruction.dst)}, {v(instruction.src)}, "
                f"{v(instruction.size)}{decayed}")
    if isinstance(instruction, ir.MemSet):
        return (f"memset {v(instruction.dst)}, {v(instruction.value)}, "
                f"{v(instruction.size)}")
    if isinstance(instruction, ir.Syscall):
        args = ", ".join(v(a) for a in instruction.args)
        return f"%{instruction.name} = syscall {instruction.number}({args})"
    if isinstance(instruction, ir.Setjmp):
        return f"%{instruction.name} = setjmp {v(instruction.buf)}"
    if isinstance(instruction, ir.Longjmp):
        return f"longjmp {v(instruction.buf)}, {v(instruction.value)}"
    return f"<{instruction.opname}>"


def format_function(function: ir.Function) -> str:
    """Full textual rendering of one function."""
    params = ", ".join(f"%{p.name}: {p.type!r}" for p in function.params)
    header = f"define {function.signature.ret!r} @{function.name}({params})"
    if function.is_declaration:
        return f"declare {header[7:]}"
    lines: List[str] = [header + " {"]
    for block in function.blocks:
        lines.append(f"{block.name}:")
        for instruction in block.instructions:
            lines.append(f"  {format_instruction(instruction)}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: ir.Module) -> str:
    """Full textual rendering of a module: globals then functions."""
    lines: List[str] = [f"; module {module.name}"]
    for variable in module.globals.values():
        const = "constant" if variable.const else "global"
        if variable.initializer is None:
            init = "zeroinitializer"
        else:
            init = ", ".join(format_value(v) for v in variable.initializer)
        lines.append(f"@{variable.name} = {const} "
                     f"{variable.value_type!r} [{init}]")
    for function in module.functions.values():
        lines.append("")
        lines.append(format_function(function))
    return "\n".join(lines)
