"""CFI instrumentation auditor: statically re-prove pass completeness.

HQ-CFI's security argument rests on instrumentation *completeness*
(sections 4.1.4-4.1.6): every function-pointer definition must emit a
``Pointer-Define``, every indirect call must be guarded by a check on
all paths, and every system call must be preceded by a correctly placed
``hq_syscall`` synchronization message.  The passes are trusted to
establish these properties; this module verifies them *independently*
over the final IR, using the dominator machinery of
:mod:`repro.compiler.cfg` and the dataflow engine of
:mod:`repro.compiler.dataflow` — so a miscompiling pass is caught by a
named, located diagnostic instead of by a runtime attack that happens
to slip through.

Rules
-----

``icall-unguarded`` (error)
    An indirect call's target can originate from a checked-load slot
    whose ``Pointer-Check`` neither exists nor dominates the call, and
    the elision of the check is not re-provable: the auditor accepts a
    missing check only when *every* definition reaching the load is a
    visible store (the :class:`~repro.compiler.dataflow.ReachingStores`
    re-proof of store-to-load forwarding's soundness claim).

``icall-target-opaque`` (warning)
    The target traces to a value the auditor cannot reason about
    locally (a function argument, arithmetic, a heap load through an
    untracked pointer).

``fnptr-define-missing`` (error)
    A store of a (possibly laundered) function pointer is not followed
    by a ``Pointer-Define`` of the same slot before the stale window
    becomes observable (a check of the slot, a call, a block memory
    operation, or the block end) — unless the slot is re-provably a
    never-checked, non-escaping stack slot, which is exactly
    ``MessageElisionPass``'s rule-1 soundness condition.

``syscall-sync-missing`` (error)
    A system call has no ``hq_syscall`` message that dominates it, is
    post-dominated by it, and has no intervening message-producing
    barrier — the three placement conditions of
    :class:`~repro.compiler.passes.syscall_sync.SyscallSyncPass`.

``syscall-sync-orphaned`` (warning)
    An ``hq_syscall`` message not consumed by any system call (it would
    pause the process at the next syscall with no syscall following).

Besides the findings, the auditor reports per-module *coverage
metrics* (instrumented vs. total indirect-call sites, defined vs.
total function-pointer stores, synced vs. total system calls, and the
address-taken-function count) in the style of Burow et al.'s static
CFI precision/coverage comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.compiler import ir
from repro.compiler.analysis import (
    EscapeAnalysis,
    address_taken_functions,
    store_defines_function_pointer,
)
from repro.compiler.cfg import DominatorTree, PostDominatorTree
from repro.compiler.dataflow import (
    DataflowResult,
    ReachingStores,
    slot_key,
    solve,
)
from repro.compiler.diagnostics import (
    Diagnostic,
    ERROR,
    WARNING,
    sort_diagnostics,
)

#: Messaging entry points the auditor recognizes (kept in sync with the
#: instrumentation passes; the tests assert the correspondence).
DEFINE = "hq_pointer_define"
CHECK_NAMES = ("hq_pointer_check", "hq_pointer_check_invalidate")
SYNC = "hq_syscall"

#: Instructions that enqueue messages (or may, via callees): nothing of
#: this kind may sit between a sync message and its system call, and
#: any of them ends a define's permissible stale window.
_MESSAGE_BARRIERS = (ir.Call, ir.ICall, ir.RuntimeCall, ir.Syscall,
                     ir.Setjmp, ir.Longjmp)

#: Instructions after which a stale (define-less) store becomes
#: observable by the verifier — mirrors ``MessageElisionPass``'s reset
#: set, which is what makes elided intermediate defines re-provable.
_OBSERVATION_POINTS = (ir.Call, ir.ICall, ir.Syscall, ir.MemCopy, ir.MemSet)


@dataclass
class AuditResult:
    """Findings plus coverage metrics for one module."""

    module: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    coverage: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error()]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]


class _FunctionAuditor:
    """Audits one function; shares per-function analyses across rules."""

    def __init__(self, function: ir.Function) -> None:
        self.function = function
        self.dom = DominatorTree(function)
        self.pdom = PostDominatorTree(function)
        self.escape = EscapeAnalysis(function)
        self._positions: Dict[int, int] = {}
        for block in function.blocks:
            for index, instruction in enumerate(block.instructions):
                self._positions[id(instruction)] = index
        self._reaching: Optional[Tuple[ReachingStores, DataflowResult]] = None
        # Map each checked load to its guarding check calls.
        self.checks_by_load: Dict[int, List[ir.RuntimeCall]] = {}
        self.checked_slots: Set[Tuple] = set()
        for instruction in function.instructions():
            if isinstance(instruction, ir.RuntimeCall) \
                    and instruction.runtime_name in CHECK_NAMES:
                if instruction.args:
                    key = slot_key(instruction.args[0])
                    if key is not None:
                        self.checked_slots.add(key)
                load = instruction.meta.get("checked_load")
                if load is None and len(instruction.args) > 1:
                    load = instruction.args[1]
                if isinstance(load, ir.Load):
                    self.checks_by_load.setdefault(
                        id(load), []).append(instruction)

    # -- shared helpers -------------------------------------------------------

    def reaching_stores(self) -> Tuple[ReachingStores, DataflowResult]:
        if self._reaching is None:
            problem = ReachingStores(self.function)
            self._reaching = (problem, solve(self.function, problem))
        return self._reaching

    def _dominates_point(self, instruction: ir.Instruction,
                         use_block: ir.BasicBlock, use_index: int) -> bool:
        """Does ``instruction`` execute before (block, index) on all paths?"""
        block = instruction.block
        if block is None:
            return False
        if block is use_block:
            return self._positions[id(instruction)] < use_index
        return self.dom.dominates(block, use_block)

    # -- rule: icall guarding -------------------------------------------------

    def audit_icalls(self, diagnostics: List[Diagnostic],
                     counts: Dict[str, int]) -> None:
        for block in self.function.blocks:
            for index, instruction in enumerate(block.instructions):
                if not isinstance(instruction, ir.ICall):
                    continue
                counts["total"] += 1
                statuses = self._classify_target(
                    instruction.target, block, index, set())
                if "unguarded" in statuses:
                    counts["unguarded"] += 1
                    diagnostics.append(Diagnostic.at(
                        ERROR, "icall-unguarded", instruction,
                        "indirect call target can originate from an "
                        "unchecked load with no re-provable forwarding; "
                        "a corrupted pointer would be called without a "
                        "Pointer-Check",
                        target=getattr(instruction.target, "name", "?")))
                elif "opaque" in statuses:
                    counts["opaque"] += 1
                    diagnostics.append(Diagnostic.at(
                        WARNING, "icall-target-opaque", instruction,
                        "indirect call target is not locally analyzable "
                        "(argument or computed value); cannot audit its "
                        "check coverage",
                        target=getattr(instruction.target, "name", "?")))
                elif "checked" in statuses:
                    counts["checked"] += 1
                elif "forwarded" in statuses:
                    counts["forwarded"] += 1
                else:
                    counts["static"] += 1

    def _classify_target(self, value: ir.Value, use_block: ir.BasicBlock,
                         use_index: int, seen: Set[int]) -> Set[str]:
        """Statuses of every terminal source feeding an icall target."""
        if id(value) in seen:
            return set()
        seen.add(id(value))
        if isinstance(value, (ir.FunctionRef, ir.Constant)):
            return {"static"}
        if isinstance(value, ir.Cast):
            return self._classify_target(value.value, use_block, use_index,
                                         seen)
        if isinstance(value, ir.Select):
            return (self._classify_target(value.if_true, use_block,
                                          use_index, seen)
                    | self._classify_target(value.if_false, use_block,
                                            use_index, seen))
        if isinstance(value, ir.Phi):
            statuses: Set[str] = set()
            for incoming, pred in value.incoming:
                # The incoming value must be guarded at the matching
                # predecessor's exit — a check in one arm of a diamond
                # guards that arm's value even though it dominates
                # neither the join nor the other arm.
                statuses |= self._classify_target(
                    incoming, pred, len(pred.instructions), seen)
            return statuses
        if isinstance(value, ir.Load):
            for check in self.checks_by_load.get(id(value), []):
                if self._dominates_point(check, use_block, use_index):
                    return {"checked"}
            problem, result = self.reaching_stores()
            if problem.provably_stored(result, value):
                return {"forwarded"}
            return {"unguarded"}
        return {"opaque"}

    # -- rule: define completeness --------------------------------------------

    def audit_defines(self, diagnostics: List[Diagnostic],
                      counts: Dict[str, int]) -> None:
        for block in self.function.blocks:
            for index, instruction in enumerate(block.instructions):
                if not isinstance(instruction, ir.Store):
                    continue
                if not store_defines_function_pointer(self.function,
                                                      instruction):
                    continue
                counts["total"] += 1
                status = self._define_status(block, index, instruction)
                counts[status] += 1
                if status == "undefined":
                    key = slot_key(instruction.pointer)
                    diagnostics.append(Diagnostic.at(
                        ERROR, "fnptr-define-missing", instruction,
                        "function-pointer store has no Pointer-Define "
                        "before its value becomes observable, and the "
                        "slot is not a re-provably never-checked, "
                        "non-escaping stack slot",
                        slot=repr(key)))

    def _define_status(self, block: ir.BasicBlock, index: int,
                       store: ir.Store) -> str:
        key = slot_key(store.pointer)
        for later in block.instructions[index + 1:]:
            if isinstance(later, ir.RuntimeCall):
                if later.runtime_name == DEFINE and later.args:
                    if later.args[0] is store.pointer or (
                            key is not None
                            and slot_key(later.args[0]) == key):
                        return "defined"
                elif later.runtime_name in CHECK_NAMES and later.args \
                        and key is not None \
                        and slot_key(later.args[0]) == key:
                    break  # a check can observe the stale value
                continue  # other messages cannot observe this slot
            if isinstance(later, _OBSERVATION_POINTS):
                break
        # No define before an observation point: sound only under the
        # elision pass's rule-1 conditions, re-proved here.
        if key is not None and key not in self.checked_slots:
            root = store.pointer
            while isinstance(root, (ir.Gep, ir.Cast)):
                root = root.pointer if isinstance(root, ir.Gep) \
                    else root.value
            if isinstance(root, ir.Alloca) \
                    and not self.escape.may_escape(root):
                return "elided-sound"
        return "undefined"

    # -- rule: syscall synchronization ----------------------------------------

    def audit_syscalls(self, diagnostics: List[Diagnostic],
                       counts: Dict[str, int]) -> None:
        consumed: Set[int] = set()
        for block in self.function.blocks:
            for instruction in block.instructions:
                if not isinstance(instruction, ir.Syscall):
                    continue
                counts["total"] += 1
                sync = self._find_sync(instruction, consumed)
                if sync is None:
                    counts["unsynced"] += 1
                    diagnostics.append(Diagnostic.at(
                        ERROR, "syscall-sync-missing", instruction,
                        f"system call {instruction.number} has no "
                        "dominating, post-dominated hq_syscall message "
                        "with a barrier-free path to the call",
                        number=instruction.number))
                else:
                    counts["synced"] += 1
                    consumed.add(id(sync))
        for instruction in self.function.instructions():
            if isinstance(instruction, ir.RuntimeCall) \
                    and instruction.runtime_name == SYNC \
                    and id(instruction) not in consumed:
                diagnostics.append(Diagnostic.at(
                    WARNING, "syscall-sync-orphaned", instruction,
                    "hq_syscall message is not consumed by any system "
                    "call on the paths it dominates"))

    def _find_sync(self, syscall: ir.Syscall,
                   consumed: Set[int]) -> Optional[ir.RuntimeCall]:
        """Walk backward from ``syscall`` over barrier-free, dominating,
        post-dominated program points — the pass's placement region —
        looking for the matching sync message."""
        block = syscall.block
        assert block is not None
        limit = self._positions[id(syscall)]
        while True:
            for instruction in reversed(block.instructions[:limit]):
                if isinstance(instruction, ir.RuntimeCall) \
                        and instruction.runtime_name == SYNC \
                        and id(instruction) not in consumed:
                    args = instruction.args
                    if args and isinstance(args[0], ir.Constant) \
                            and args[0].value != syscall.number:
                        return None  # a different syscall's message
                    return instruction
                if isinstance(instruction, _MESSAGE_BARRIERS) \
                        or isinstance(instruction, ir.Phi):
                    return None
            # Block head: continue into the immediate dominator if the
            # edge is an unconditional fall-through the syscall's block
            # post-dominates (the region the pass may hoist into).
            idom = self.dom.idom.get(block)
            if idom is None or idom is block:
                return None
            if idom.successors != [block]:
                return None
            if not self.pdom.post_dominates(block, idom):
                return None
            block, limit = idom, len(idom.instructions)


def audit_function(function: ir.Function) -> AuditResult:
    """Audit a single function (useful in tests); see :func:`audit_module`."""
    result = AuditResult(module=function.module.name)
    _audit_into(function, result)
    result.diagnostics = sort_diagnostics(result.diagnostics)
    return result


def _new_counts() -> Dict[str, Dict[str, int]]:
    return {
        "indirect-calls": {"total": 0, "checked": 0, "forwarded": 0,
                           "static": 0, "unguarded": 0, "opaque": 0},
        "fnptr-stores": {"total": 0, "defined": 0, "elided-sound": 0,
                         "undefined": 0},
        "syscalls": {"total": 0, "synced": 0, "unsynced": 0},
    }


def _audit_into(function: ir.Function, result: AuditResult) -> None:
    if not result.coverage:
        result.coverage = _new_counts()
    auditor = _FunctionAuditor(function)
    auditor.audit_icalls(result.diagnostics,
                         result.coverage["indirect-calls"])
    auditor.audit_defines(result.diagnostics,
                          result.coverage["fnptr-stores"])
    auditor.audit_syscalls(result.diagnostics, result.coverage["syscalls"])


def audit_module(module: ir.Module) -> AuditResult:
    """Run every audit rule over every defined function of ``module``."""
    result = AuditResult(module=module.name, coverage=_new_counts())
    for function in module.functions.values():
        if function.is_declaration:
            continue
        _audit_into(function, result)
    result.coverage["functions"] = {
        "total": len(module.functions),
        "defined": sum(1 for f in module.functions.values()
                       if not f.is_declaration),
        "address-taken": len(address_taken_functions(module)),
    }
    result.diagnostics = sort_diagnostics(result.diagnostics)
    return result
