"""Control-flow graph analyses: dominators and post-dominators.

The syscall-synchronization pass places System-Call messages at "the
earliest suitable point" using graph dominators (section 3.2): the
point must dominate the system call, be post-dominated by it, and not
dominate intervening calls/messages.  This module computes dominator
and post-dominator trees with the classic iterative dataflow algorithm
of Cooper, Harvey & Kennedy — equivalent in result to the
Lengauer-Tarjan algorithm the paper cites [65], and simpler to verify.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.compiler.ir import BasicBlock, Function


def predecessors(function: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Map each block to its CFG predecessors."""
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in function.blocks}
    for block in function.blocks:
        for successor in block.successors:
            preds[successor].append(block)
    return preds


def _postorder(roots: List[BasicBlock],
               successors_of) -> List[BasicBlock]:
    """Iterative DFS postorder from ``roots`` (first root visited first).

    Visits successors in order, exactly like the natural recursive
    formulation, but with an explicit stack: generated CFGs contain
    straight-line chains thousands of blocks deep, far past Python's
    recursion limit.
    """
    seen: Set[BasicBlock] = set()
    order: List[BasicBlock] = []
    for root in roots:
        if root in seen:
            continue
        seen.add(root)
        stack: List[tuple] = [(root, 0)]
        while stack:
            block, index = stack[-1]
            successors = successors_of(block)
            if index < len(successors):
                stack[-1] = (block, index + 1)
                successor = successors[index]
                if successor not in seen:
                    seen.add(successor)
                    stack.append((successor, 0))
            else:
                stack.pop()
                order.append(block)
    return order


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """Blocks in reverse postorder from the entry (unreachable excluded)."""
    if not function.blocks:
        return []
    order = _postorder([function.entry], lambda block: block.successors)
    order.reverse()
    return order


class DominatorTree:
    """Immediate-dominator tree over a function's reachable blocks."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.order = reverse_postorder(function)
        self._index = {block: i for i, block in enumerate(self.order)}
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._compute()

    def _compute(self) -> None:
        if not self.order:
            return
        entry = self.order[0]
        preds = predecessors(self.function)
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}
        changed = True
        while changed:
            changed = False
            for block in self.order[1:]:
                candidates = [p for p in preds[block] if p in idom]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for other in candidates[1:]:
                    new_idom = self._intersect(idom, new_idom, other)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True
        idom[entry] = None
        self.idom = idom

    def _intersect(self, idom, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while self._index[a] > self._index[b]:
                a = idom[a]
            while self._index[b] > self._index[a]:
                b = idom[b]
        return a

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Whether ``a`` dominates ``b`` (reflexive)."""
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            node = self.idom.get(node)
        return False

    def dominators_of(self, block: BasicBlock) -> List[BasicBlock]:
        """All dominators of ``block``, nearest first."""
        result = []
        node: Optional[BasicBlock] = block
        while node is not None:
            result.append(node)
            node = self.idom.get(node)
        return result


class PostDominatorTree:
    """Immediate post-dominator tree (computed on the reversed CFG).

    Functions may have several exits (multiple rets, longjmp); a virtual
    exit node unifies them, represented here by ``None``.
    """

    def __init__(self, function: Function) -> None:
        self.function = function
        self._succ = {b: list(b.successors) for b in function.blocks}
        self._exits = [b for b in function.blocks if not b.successors]
        # Successors in the reverse CFG = predecessors in the real one.
        self._rpreds = predecessors(function)
        self.ipdom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._compute()

    def _compute(self) -> None:
        blocks = self.function.blocks
        if not blocks:
            return
        # Postorder on the reverse graph starting from exits (iterative:
        # deep straight-line chains would overflow the recursion limit).
        order = _postorder(self._exits, self._rcfg_successors)
        order.reverse()
        index = {block: i for i, block in enumerate(order)}

        ipdom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        for exit_block in self._exits:
            ipdom[exit_block] = exit_block
        changed = True
        while changed:
            changed = False
            for block in order:
                if block in self._exits:
                    continue
                candidates = [s for s in self._succ[block] if s in ipdom]
                if not candidates:
                    continue
                new = candidates[0]
                for other in candidates[1:]:
                    new = self._intersect(ipdom, index, new, other)
                if ipdom.get(block) is not new:
                    ipdom[block] = new
                    changed = True
        for exit_block in self._exits:
            ipdom[exit_block] = None
        self.ipdom = ipdom

    def _rcfg_successors(self, block: BasicBlock) -> List[BasicBlock]:
        """Successors in the reverse CFG = predecessors in the real CFG."""
        return self._rpreds[block]

    def _intersect(self, ipdom, index, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        seen_a = set()
        node: Optional[BasicBlock] = a
        while node is not None:
            seen_a.add(node)
            node = ipdom.get(node)
            if node in seen_a:
                break
        node = b
        while node is not None and node not in seen_a:
            nxt = ipdom.get(node)
            if nxt is node:
                break
            node = nxt
        return node if node is not None else a

    def post_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Whether ``a`` post-dominates ``b`` (reflexive)."""
        node: Optional[BasicBlock] = b
        seen: Set[BasicBlock] = set()
        while node is not None and node not in seen:
            if node is a:
                return True
            seen.add(node)
            node = self.ipdom.get(node)
        return False
