"""The mini compiler: IR, builder, analyses, instrumentation passes."""

from repro.compiler.builder import IRBuilder
from repro.compiler.cfg import DominatorTree, PostDominatorTree
from repro.compiler.ir import BasicBlock, Function, Module

__all__ = ["BasicBlock", "DominatorTree", "Function", "IRBuilder",
           "Module", "PostDominatorTree"]
