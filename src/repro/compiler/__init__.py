"""The mini compiler: IR, builder, analyses, instrumentation passes."""

from repro.compiler.builder import IRBuilder
from repro.compiler.cfg import DominatorTree, PostDominatorTree
from repro.compiler.dataflow import (
    Liveness,
    ReachingStores,
    liveness,
    reaching_stores,
    solve,
)
from repro.compiler.diagnostics import Diagnostic
from repro.compiler.ir import BasicBlock, Function, Module
from repro.compiler.lint import AuditResult, audit_function, audit_module
from repro.compiler.validate import ValidationError, validate_module

__all__ = ["AuditResult", "BasicBlock", "Diagnostic", "DominatorTree",
           "Function", "IRBuilder", "Liveness", "Module",
           "PostDominatorTree", "ReachingStores", "ValidationError",
           "audit_function", "audit_module", "liveness", "reaching_stores",
           "solve", "validate_module"]
