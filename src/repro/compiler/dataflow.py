"""Generic dataflow analysis over the mini IR.

A forward/backward worklist solver parameterized over a lattice: a
:class:`DataflowProblem` supplies the transfer function and the meet
operator, and :func:`solve` iterates block-level facts to a fixpoint in
reverse postorder (forward) or postorder (backward), the orders that
converge fastest for reducible CFGs and still terminate on irreducible
ones (facts are drawn from finite lattices and transfer functions are
monotone).

Two classic instances ship with the engine:

* :class:`ReachingStores` — which stores may provide the value of each
  memory *slot* (the field-sensitive slot model of :func:`slot_key`) at
  each program point.  This is the analysis behind store-to-load
  forwarding's "the verifier already knows this value" argument and the
  lint auditor's independent re-proof of it: a checked load whose check
  was elided is sound exactly when every definition reaching it is a
  visible store (no unknown initial value, no clobbering call).
* :class:`Liveness` — classic backward liveness of SSA values, with the
  φ refinement that incoming values are live along the matching
  predecessor edge only (via :meth:`DataflowProblem.edge_transfer`).

Facts are immutable (``frozenset``) so states can be compared with
``==`` and shared without defensive copies.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.compiler import ir
from repro.compiler.cfg import predecessors, reverse_postorder


# -- the shared slot model ----------------------------------------------------

def slot_key(pointer: ir.Value) -> Optional[Tuple]:
    """A field-sensitive key identifying a memory slot, or ``None``.

    ``alloca`` → ("alloca", id); ``gep(alloca, field)`` →
    ("alloca", id, "field", name); globals likewise.  Dynamic indices
    and pointer casts defeat field sensitivity.  This is the slot model
    shared by store-to-load forwarding, message elision, and the lint
    auditor — one definition, so the optimizers and the checker that
    re-proves them can never drift apart.
    """
    if isinstance(pointer, ir.Alloca):
        return ("alloca", id(pointer))
    if isinstance(pointer, ir.GlobalVariable):
        return ("global", pointer.name)
    if isinstance(pointer, ir.Gep) and pointer.field is not None:
        base = slot_key(pointer.pointer)
        if base is not None:
            return base + ("field", pointer.field)
    return None


def may_clobber_memory(instruction: ir.Instruction) -> bool:
    """Whether ``instruction`` may modify memory through an alias.

    Runtime calls are deliberately excluded: the trusted instrumentation
    runtime neither retains nor writes through program pointers.
    """
    return isinstance(instruction, (ir.Call, ir.ICall, ir.MemCopy,
                                    ir.MemSet, ir.Realloc, ir.Free,
                                    ir.Syscall, ir.Setjmp, ir.Longjmp))


# -- the engine ---------------------------------------------------------------

class DataflowProblem:
    """A lattice + transfer functions; subclass per analysis.

    The engine works on whole-block granularity: ``transfer_block``
    folds ``transfer_instruction`` over the block (forward) or its
    reverse (backward).  Subclasses usually override only
    ``transfer_instruction`` plus the three lattice hooks.
    """

    #: "forward" (facts flow entry → exits) or "backward".
    direction = "forward"

    def boundary(self, function: ir.Function) -> FrozenSet:
        """Fact at the CFG boundary (entry if forward, exits if backward)."""
        return frozenset()

    def initial(self, function: ir.Function) -> FrozenSet:
        """Optimistic initial fact for interior blocks (lattice top)."""
        return frozenset()

    def meet(self, facts: List[FrozenSet]) -> FrozenSet:
        """Combine facts arriving over several edges (default: union)."""
        merged: FrozenSet = frozenset()
        for fact in facts:
            merged = merged | fact
        return merged

    def edge_transfer(self, pred: ir.BasicBlock, succ: ir.BasicBlock,
                      fact: FrozenSet) -> FrozenSet:
        """Adjust a fact as it crosses the ``pred`` → ``succ`` edge.

        Identity by default; :class:`Liveness` uses it to resolve
        φ-nodes per predecessor.
        """
        return fact

    def transfer_instruction(self, fact: FrozenSet,
                             instruction: ir.Instruction) -> FrozenSet:
        return fact

    def transfer_block(self, block: ir.BasicBlock,
                       fact: FrozenSet) -> FrozenSet:
        instructions = block.instructions
        if self.direction == "backward":
            instructions = reversed(instructions)
        for instruction in instructions:
            fact = self.transfer_instruction(fact, instruction)
        return fact


class DataflowResult:
    """Fixpoint facts at block boundaries, plus point queries."""

    def __init__(self, problem: DataflowProblem,
                 block_in: Dict[ir.BasicBlock, FrozenSet],
                 block_out: Dict[ir.BasicBlock, FrozenSet],
                 iterations: int) -> None:
        self.problem = problem
        self.block_in = block_in
        self.block_out = block_out
        #: Number of sweeps the solver needed to converge.
        self.iterations = iterations

    def before(self, instruction: ir.Instruction) -> FrozenSet:
        """The fact holding just before ``instruction`` executes.

        For backward problems this is the fact *flowing out of* the
        instruction toward the entry (e.g. variables live before it).
        """
        return self._at(instruction, before=True)

    def after(self, instruction: ir.Instruction) -> FrozenSet:
        """The fact holding just after ``instruction`` executes."""
        return self._at(instruction, before=False)

    def _at(self, instruction: ir.Instruction, before: bool) -> FrozenSet:
        block = instruction.block
        if block is None:
            raise ValueError(f"{instruction!r} is not inside a block")
        problem = self.problem
        if problem.direction == "forward":
            fact = self.block_in.get(block, problem.initial(block.function))
            for current in block.instructions:
                if current is instruction and before:
                    return fact
                fact = problem.transfer_instruction(fact, current)
                if current is instruction:
                    return fact
        else:
            fact = self.block_out.get(block, problem.initial(block.function))
            for current in reversed(block.instructions):
                if current is instruction and not before:
                    return fact
                fact = problem.transfer_instruction(fact, current)
                if current is instruction:
                    return fact
        raise ValueError(f"{instruction!r} not found in its block")


def solve(function: ir.Function, problem: DataflowProblem) -> DataflowResult:
    """Iterate ``problem`` over ``function`` to a fixpoint.

    Unreachable blocks are excluded (they have no incoming facts and
    the optimizers never consult them).  Returns block-boundary facts;
    instruction-granular facts come from :meth:`DataflowResult.before`
    / :meth:`~DataflowResult.after`, recomputed on demand.
    """
    order = reverse_postorder(function)
    if not order:
        return DataflowResult(problem, {}, {}, 0)
    forward = problem.direction == "forward"
    preds = predecessors(function)
    reachable = set(order)

    if forward:
        sweep_order = order
        edges_in = {block: [p for p in preds[block] if p in reachable]
                    for block in order}
        boundary_blocks = {order[0]}
    else:
        sweep_order = list(reversed(order))
        edges_in = {block: [s for s in block.successors if s in reachable]
                    for block in order}
        boundary_blocks = {block for block in order if not block.successors}

    block_in: Dict[ir.BasicBlock, FrozenSet] = {}
    block_out: Dict[ir.BasicBlock, FrozenSet] = {}
    boundary = problem.boundary(function)
    for block in order:
        block_in[block] = problem.initial(function)
        block_out[block] = problem.initial(function)

    iterations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        for block in sweep_order:
            sources = edges_in[block]
            incoming = [problem.edge_transfer(
                            *( (src, block) if forward else (block, src) ),
                            block_out[src]) for src in sources]
            if block in boundary_blocks:
                incoming.append(boundary)
            fact_in = problem.meet(incoming) if incoming \
                else problem.initial(function)
            fact_out = problem.transfer_block(block, fact_in)
            if fact_in != block_in[block] or fact_out != block_out[block]:
                block_in[block] = fact_in
                block_out[block] = fact_out
                changed = True

    if forward:
        return DataflowResult(problem, block_in, block_out, iterations)
    # For backward problems, report facts in execution orientation:
    # block_in = fact at block entry, block_out = fact at block exit.
    return DataflowResult(problem, block_out, block_in, iterations)


# -- instance: reaching stores -----------------------------------------------

#: Token for "the slot still holds its initial (unknown) value".
UNDEF = "undef"
#: Token for "a call or block memory operation may have rewritten it".
CLOBBER = "clobber"


class ReachingStores(DataflowProblem):
    """Which definitions may supply each slot's value at each point.

    Facts are frozensets of ``(slot_key, token)`` pairs where ``token``
    is the ``id`` of a :class:`~repro.compiler.ir.Store`, or the
    :data:`UNDEF` / :data:`CLOBBER` markers.  Every tracked slot always
    carries at least one token, so the *absence* of unknown tokens is
    meaningful: if all tokens for a slot at a load are plain store ids,
    the loaded value is provably one a ``Pointer-Define`` described.
    """

    direction = "forward"

    def __init__(self, function: ir.Function) -> None:
        self.function = function
        self.stores: Dict[int, ir.Store] = {}
        keys = set()
        for instruction in function.instructions():
            if isinstance(instruction, ir.Store):
                key = slot_key(instruction.pointer)
                if key is not None:
                    keys.add(key)
                    self.stores[id(instruction)] = instruction
            elif isinstance(instruction, ir.Load):
                key = slot_key(instruction.pointer)
                if key is not None:
                    keys.add(key)
        self.keys = frozenset(keys)
        self._boundary = frozenset((key, UNDEF) for key in self.keys)

    def boundary(self, function: ir.Function) -> FrozenSet:
        return self._boundary

    def transfer_instruction(self, fact: FrozenSet,
                             instruction: ir.Instruction) -> FrozenSet:
        if isinstance(instruction, ir.Store):
            key = slot_key(instruction.pointer)
            if key is None:
                # Stores through untracked pointers are assumed not to
                # alias tracked slots — the same aliasing model the
                # store-to-load-forwarding and elision passes use, so
                # the auditor accepts exactly the facts they rely on.
                return fact
            kept = frozenset(pair for pair in fact if pair[0] != key)
            if instruction.volatile or instruction.atomic:
                return kept | {(key, CLOBBER)}
            return kept | {(key, id(instruction))}
        if may_clobber_memory(instruction):
            return frozenset((key, CLOBBER) for key in self.keys)
        return fact

    # -- queries -------------------------------------------------------------

    def reaching(self, result: DataflowResult,
                 load: ir.Load) -> Optional[FrozenSet]:
        """Tokens reaching ``load`` for its slot (None if untracked)."""
        key = slot_key(load.pointer)
        if key is None:
            return None
        fact = result.before(load)
        return frozenset(token for k, token in fact if k == key)

    def provably_stored(self, result: DataflowResult, load: ir.Load) -> bool:
        """Every definition reaching ``load`` is a visible store.

        This is the soundness condition behind eliding the load's
        ``Pointer-Check``: no path delivers an uninitialized or
        call-clobbered value, so the value observed equals one a
        dominatingly-executed store produced (and messaged).
        """
        tokens = self.reaching(result, load)
        if not tokens:
            return False
        return all(isinstance(token, int) for token in tokens)


# -- instance: liveness ------------------------------------------------------

class Liveness(DataflowProblem):
    """Backward liveness of SSA values (instructions and arguments).

    Facts are frozensets of value ids.  φ-nodes are handled precisely:
    an incoming value is live at the end of the matching predecessor
    only, and φ results are not live-in to their own block.
    """

    direction = "backward"

    def __init__(self, function: ir.Function) -> None:
        self.function = function
        self.values: Dict[int, ir.Value] = {}
        for argument in function.params:
            self.values[id(argument)] = argument
        for instruction in function.instructions():
            self.values[id(instruction)] = instruction

    def _trackable(self, value: ir.Value) -> bool:
        return id(value) in self.values

    def transfer_instruction(self, fact: FrozenSet,
                             instruction: ir.Instruction) -> FrozenSet:
        live = set(fact)
        live.discard(id(instruction))
        if isinstance(instruction, ir.Phi):
            # Incoming values are edge uses, added by edge_transfer.
            return frozenset(live)
        for operand in instruction.operands:
            if self._trackable(operand):
                live.add(id(operand))
        return frozenset(live)

    def edge_transfer(self, pred: ir.BasicBlock, succ: ir.BasicBlock,
                      fact: FrozenSet) -> FrozenSet:
        live = set(fact)
        for instruction in succ.instructions:
            if not isinstance(instruction, ir.Phi):
                break
            live.discard(id(instruction))
            for value, block in instruction.incoming:
                if block is pred and self._trackable(value):
                    live.add(id(value))
        return frozenset(live)

    # -- queries -------------------------------------------------------------

    def live_before(self, result: DataflowResult,
                    instruction: ir.Instruction) -> FrozenSet:
        """Values live just before ``instruction`` executes."""
        return result.before(instruction)

    def is_dead(self, result: DataflowResult,
                instruction: ir.Instruction) -> bool:
        """The instruction's own result is never used afterwards."""
        return id(instruction) not in result.after(instruction)


def reaching_stores(function: ir.Function) -> Tuple[ReachingStores,
                                                    DataflowResult]:
    """Convenience: solve :class:`ReachingStores` over ``function``."""
    problem = ReachingStores(function)
    return problem, solve(function, problem)


def liveness(function: ir.Function) -> Tuple[Liveness, DataflowResult]:
    """Convenience: solve :class:`Liveness` over ``function``."""
    problem = Liveness(function)
    return problem, solve(function, problem)
