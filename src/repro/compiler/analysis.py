"""Compiler analyses backing the instrumentation passes.

Implements the paper's section 4.1.4 analyses:

* **Function-pointer detection**: a pointer slot is treated as holding a
  function pointer if (1) it is ever defined from a value of function
  pointer type, *including via pointer casts and φ-nodes*, or (2) other
  uses of its original value are ever cast to function-pointer type.
  This avoids false negatives from type casting/decay.
* **Escape analysis**: decides whether a stack slot's address escapes
  the defining function (passed to a call, stored to memory, returned),
  bounding where the store-to-load-forwarding and message-elision
  optimizations are sound.
* **Function attributes** used by the backward-edge pass (section
  4.1.6): may-write-memory, known-to-return, has-stack-allocations,
  always-tail-called.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.compiler import ir
from repro.compiler.types import is_function_pointer, is_vtable_pointer


def _value_sources(value: ir.Value, seen: Set[int]) -> Iterable[ir.Value]:
    """Transitive data sources of ``value`` through casts/φ/selects."""
    if id(value) in seen:
        return
    seen.add(id(value))
    yield value
    if isinstance(value, ir.Cast):
        yield from _value_sources(value.value, seen)
    elif isinstance(value, ir.Phi):
        for incoming, _ in value.incoming:
            yield from _value_sources(incoming, seen)
    elif isinstance(value, ir.Select):
        yield from _value_sources(value.if_true, seen)
        yield from _value_sources(value.if_false, seen)


def is_function_pointer_value(value: ir.Value) -> bool:
    """Whether ``value`` may carry a function pointer at runtime.

    Looks through casts, φ-nodes, and selects so that a decayed
    ``void *`` whose origin is a :class:`~repro.compiler.ir.FunctionRef`
    is still recognized (detection rule 1 of section 4.1.4).
    """
    for source in _value_sources(value, set()):
        if is_function_pointer(source.type) or is_vtable_pointer(source.type):
            return True
        if isinstance(source, ir.FunctionRef):
            return True
    return False


def uses_of(function: ir.Function, value: ir.Value) -> List[ir.Instruction]:
    """All instructions in ``function`` using ``value`` as an operand."""
    return [instruction for instruction in function.instructions()
            if any(op is value for op in instruction.operands)]


def value_recast_to_function_pointer(function: ir.Function, value: ir.Value) -> bool:
    """Detection rule 2: some *other* use of ``value`` casts it to a
    function-pointer type, implying the slot may hold code addresses."""
    for use in uses_of(function, value):
        if isinstance(use, ir.Cast) and is_function_pointer(use.type):
            return True
    return False


def store_defines_function_pointer(function: ir.Function, store: ir.Store) -> bool:
    """Whether a store writes a (possibly laundered) function pointer."""
    if is_function_pointer_value(store.value):
        return True
    return value_recast_to_function_pointer(function, store.value)


def pointer_feeds_icall(function: ir.Function, value: ir.Value) -> bool:
    """Whether ``value`` (a loaded pointer) reaches an indirect call.

    Follows forward through casts/φ/selects.
    """
    worklist = [value]
    seen: Set[int] = set()
    while worklist:
        current = worklist.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        for use in uses_of(function, current):
            if isinstance(use, ir.ICall) and use.target is current:
                return True
            if isinstance(use, (ir.Cast, ir.Phi, ir.Select)):
                worklist.append(use)
    return False


class EscapeAnalysis:
    """Per-function escape analysis over ``alloca`` slots.

    A slot *escapes* if its address is passed to any call, stored into
    memory, returned, or flows into a value that does any of those.  The
    paper notes its escape analysis "is more precise than the built-in
    fast-but-conservative alias analysis"; ours is a straightforward
    flow-insensitive propagation, which is still far more precise than
    assuming everything aliases.
    """

    def __init__(self, function: ir.Function) -> None:
        self.function = function
        self.escaped: Set[ir.Instruction] = set()
        self._compute()

    def _compute(self) -> None:
        aliases: Dict[int, ir.Instruction] = {}
        for instruction in self.function.instructions():
            if isinstance(instruction, ir.Alloca):
                aliases[id(instruction)] = instruction
        changed = True
        while changed:
            changed = False
            for instruction in self.function.instructions():
                if isinstance(instruction, (ir.Cast, ir.Gep, ir.Phi, ir.Select)):
                    for operand in instruction.operands:
                        root = aliases.get(id(operand))
                        if root is not None and id(instruction) not in aliases:
                            aliases[id(instruction)] = root
                            changed = True
        for instruction in self.function.instructions():
            # RuntimeCall is deliberately excluded: instrumentation
            # passes slots to the trusted runtime, which neither
            # retains nor writes through them — counting those as
            # escapes would defeat the very optimizations that prune
            # instrumentation.
            if isinstance(instruction, (ir.Call, ir.ICall)):
                for arg in instruction.args:
                    self._mark(aliases, arg)
            elif isinstance(instruction, ir.Store):
                # Storing the *address* (not storing through it) escapes.
                self._mark(aliases, instruction.value)
            elif isinstance(instruction, ir.Ret) and instruction.value is not None:
                self._mark(aliases, instruction.value)
            elif isinstance(instruction, (ir.MemCopy, ir.MemSet)):
                for operand in instruction.operands:
                    self._mark(aliases, operand)

    def _mark(self, aliases: Dict[int, ir.Instruction], value: ir.Value) -> None:
        root = aliases.get(id(value))
        if root is not None:
            self.escaped.add(root)

    def may_escape(self, alloca: ir.Instruction) -> bool:
        """Whether the slot's address may be visible outside the function."""
        return alloca in self.escaped


def may_write_memory(function: ir.Function) -> bool:
    """Whether the function (conservatively) writes memory."""
    for instruction in function.instructions():
        if isinstance(instruction, (ir.Store, ir.MemCopy, ir.MemSet,
                                    ir.Malloc, ir.Free, ir.Realloc,
                                    ir.Call, ir.ICall, ir.Syscall)):
            return True
    return False


def has_stack_allocations(function: ir.Function) -> bool:
    """Whether the function allocates stack memory (``alloca``)."""
    return any(isinstance(i, ir.Alloca) for i in function.instructions())


def known_to_return(function: ir.Function) -> bool:
    """Whether some path reaches a ``ret`` (and not marked noreturn)."""
    if function.no_return:
        return False
    return any(isinstance(i, ir.Ret) for i in function.instructions())


def always_tail_called(function: ir.Function) -> bool:
    """Whether every call site of ``function`` in the module is a tail
    call (its frame never outlives the caller's return pointer)."""
    sites = [instruction for instruction in function.module.all_instructions()
             if isinstance(instruction, ir.Call) and instruction.callee is function]
    return bool(sites) and all(site.tail for site in sites)


def needs_return_pointer_protection(function: ir.Function) -> bool:
    """Section 4.1.6 predicate: the backward-edge pass instruments
    functions that may write to memory, are known to return, contain
    stack allocations, and are not always tail called."""
    if function.is_declaration:
        return False
    return (may_write_memory(function)
            and known_to_return(function)
            and has_stack_allocations(function)
            and not always_tail_called(function))


def address_taken_functions(module: ir.Module) -> Set[str]:
    """Functions whose address is taken anywhere in the module.

    This is the single coarse equivalence class used by designs like
    Microsoft CFG, and the starting point for Clang/LLVM CFI's
    type-based classes (section 6.3.1).
    """
    taken: Set[str] = set()
    for function in module.functions.values():
        if function.address_taken:
            taken.add(function.name)
    for instruction in module.all_instructions():
        for operand in instruction.operands:
            if isinstance(operand, ir.FunctionRef):
                taken.add(operand.function.name)
    for variable in module.globals.values():
        for value in variable.initializer or []:
            if isinstance(value, ir.FunctionRef):
                taken.add(value.function.name)
    return taken
