"""Structured findings emitted by the static-analysis layer.

A :class:`Diagnostic` pins one finding to a rule id, a severity, and an
exact IR location (function, block, instruction), so a tripped audit
points at the instruction a pass mishandled rather than at a failing
benchmark three layers later.  Renderers produce the human text and the
machine JSON the lint CLI exposes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.compiler import ir

#: Severities, in increasing order of badness.
INFO = "info"
WARNING = "warning"
ERROR = "error"

_SEVERITY_RANK = {INFO: 0, WARNING: 1, ERROR: 2}


@dataclass
class Diagnostic:
    """One finding of the instrumentation auditor or the validator."""

    severity: str
    rule: str
    module: str
    function: Optional[str]
    block: Optional[str]
    instruction: Optional[str]
    message: str
    #: Free-form extras (slot keys, counts) for the JSON renderer.
    data: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def at(cls, severity: str, rule: str, instruction: ir.Instruction,
           message: str, **data: object) -> "Diagnostic":
        """Build a diagnostic located at ``instruction``."""
        block = instruction.block
        function = block.function if block is not None else None
        return cls(
            severity=severity,
            rule=rule,
            module=function.module.name if function is not None else "?",
            function=function.name if function is not None else None,
            block=block.name if block is not None else None,
            instruction=instruction.name or instruction.opname,
            message=message,
            data=dict(data),
        )

    @property
    def location(self) -> str:
        parts = [self.module]
        if self.function:
            parts.append(self.function)
        if self.block:
            parts.append(self.block)
        where = ":".join(parts)
        if self.instruction:
            where += f":%{self.instruction}"
        return where

    def is_error(self) -> bool:
        return self.severity == ERROR

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "severity": self.severity,
            "rule": self.rule,
            "module": self.module,
            "function": self.function,
            "block": self.block,
            "instruction": self.instruction,
            "message": self.message,
        }
        if self.data:
            payload["data"] = self.data
        return payload


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Stable order: errors first, then by location."""
    return sorted(diagnostics,
                  key=lambda d: (-_SEVERITY_RANK.get(d.severity, 0),
                                 d.module, d.function or "", d.block or "",
                                 d.rule))


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """One ``severity rule location: message`` line per finding."""
    lines = []
    for diagnostic in diagnostics:
        lines.append(f"{diagnostic.severity:<7} {diagnostic.rule:<24} "
                     f"{diagnostic.location}: {diagnostic.message}")
    return "\n".join(lines)


def render_json(diagnostics: Iterable[Diagnostic],
                coverage: Optional[Dict[str, Dict[str, int]]] = None,
                indent: int = 2) -> str:
    """The machine-readable report (findings + optional coverage)."""
    payload: Dict[str, object] = {
        "diagnostics": [d.to_dict() for d in diagnostics],
    }
    if coverage is not None:
        payload["coverage"] = coverage
    return json.dumps(payload, indent=indent, sort_keys=True)


def summarize(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    """Counts per severity (always includes all three keys)."""
    counts = {INFO: 0, WARNING: 0, ERROR: 0}
    for diagnostic in diagnostics:
        counts[diagnostic.severity] = counts.get(diagnostic.severity, 0) + 1
    return counts
