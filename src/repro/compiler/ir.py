"""Mini SSA intermediate representation.

A compact LLVM-flavoured IR: a :class:`Module` holds global variables
and :class:`Function` s; each function is a list of :class:`BasicBlock` s
of :class:`Instruction` s ending in a terminator.  Instructions are SSA
values (each produces at most one result, referenced directly as
operands).  The instrumentation passes of :mod:`repro.compiler.passes`
rewrite this IR exactly the way the paper's LLVM passes rewrite LLVM IR,
and :mod:`repro.sim.cpu` interprets it against a simulated process.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.compiler.types import (
    FunctionType,
    I64,
    PointerType,
    StructType,
    Type,
    VOID,
    ptr,
)


class Value:
    """Anything usable as an instruction operand."""

    type: Type
    name: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name or hex(id(self))}>"


class Constant(Value):
    """An integer (or address) literal."""

    def __init__(self, value: int, type_: Type = I64) -> None:
        self.value = value
        self.type = type_

    def __repr__(self) -> str:
        return f"const {self.value}"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, function: "Function", index: int, type_: Type, name: str) -> None:
        self.function = function
        self.index = index
        self.type = type_
        self.name = name


class GlobalVariable(Value):
    """A module-level variable; its value is its address.

    ``const`` globals are placed in the read-only data segment by the
    loader — the paper compiles with read-only relocations and eager
    binding, so constant function-pointer tables need no protection
    (section 4.1.3).
    """

    def __init__(self, name: str, value_type: Type,
                 initializer: Optional[Sequence[Value]] = None,
                 const: bool = False) -> None:
        self.name = name
        self.value_type = value_type
        self.type = ptr(value_type)
        self.initializer = list(initializer) if initializer is not None else None
        self.const = const
        #: Assigned by the loader.
        self.address: Optional[int] = None


class FunctionRef(Value):
    """The address of a function, as a constant value."""

    def __init__(self, function: "Function") -> None:
        self.function = function
        self.type = ptr(function.signature)
        self.name = function.name


class Instruction(Value):
    """Base class for IR instructions.

    ``operands`` lists every :class:`Value` the instruction uses, so
    passes can do generic def-use reasoning; subclasses also expose the
    operands under meaningful attribute names.
    """

    _ids = itertools.count()
    opname = "?"
    is_terminator = False

    def __init__(self, type_: Type = VOID, name: str = "") -> None:
        self.type = type_
        self.name = name or f"v{next(Instruction._ids)}"
        self.block: Optional["BasicBlock"] = None
        #: Free-form annotations used by passes (e.g. elision marks).
        self.meta: Dict[str, object] = {}

    @property
    def operands(self) -> List[Value]:
        return []

    def replace_operand(self, old: Value, new: Value) -> None:
        """Replace every use of ``old`` with ``new`` in this instruction."""
        for attr, value in list(self.__dict__.items()):
            if value is old:
                setattr(self, attr, new)
            elif isinstance(value, list):
                setattr(self, attr,
                        [new if item is old else item for item in value])


# -- memory ------------------------------------------------------------------

class Alloca(Instruction):
    """Reserve stack storage for one value of ``allocated_type``."""

    opname = "alloca"

    def __init__(self, allocated_type: Type, name: str = "") -> None:
        super().__init__(ptr(allocated_type), name)
        self.allocated_type = allocated_type


class Load(Instruction):
    """Read the value pointed to by ``pointer``."""

    opname = "load"

    def __init__(self, pointer: Value, name: str = "",
                 volatile: bool = False, atomic: bool = False) -> None:
        pointee = pointer.type.pointee if isinstance(pointer.type, PointerType) else I64
        super().__init__(pointee, name)
        self.pointer = pointer
        self.volatile = volatile
        self.atomic = atomic

    @property
    def operands(self) -> List[Value]:
        return [self.pointer]


class Store(Instruction):
    """Write ``value`` through ``pointer``."""

    opname = "store"

    def __init__(self, value: Value, pointer: Value,
                 volatile: bool = False, atomic: bool = False) -> None:
        super().__init__(VOID)
        self.value = value
        self.pointer = pointer
        self.volatile = volatile
        self.atomic = atomic

    @property
    def operands(self) -> List[Value]:
        return [self.value, self.pointer]


class Gep(Instruction):
    """Get-element-pointer: address of a field/element inside ``pointer``.

    ``field`` is a struct field name; ``index`` an (optionally dynamic)
    array index.  Exactly one of them is used.
    """

    opname = "gep"

    def __init__(self, pointer: Value, field: Optional[str] = None,
                 index: Optional[Value] = None, name: str = "") -> None:
        base_type = pointer.type.pointee if isinstance(pointer.type, PointerType) else I64
        if field is not None:
            if not isinstance(base_type, StructType):
                raise TypeError(f"gep field access on non-struct {base_type!r}")
            result = ptr(base_type.field_type(field))
        elif index is not None:
            element = getattr(base_type, "element", base_type)
            result = ptr(element)
        else:
            raise ValueError("gep needs a field or an index")
        super().__init__(result, name)
        self.pointer = pointer
        self.field = field
        self.index = index

    @property
    def operands(self) -> List[Value]:
        ops = [self.pointer]
        if self.index is not None:
            ops.append(self.index)
        return ops


class Cast(Instruction):
    """Bitcast / ptrtoint / inttoptr: reinterpret ``value`` as ``to``.

    Casts are how function pointers *decay* into generic pointers; the
    function-pointer detection analysis follows them (section 4.1.4).
    """

    opname = "cast"

    def __init__(self, value: Value, to: Type, name: str = "") -> None:
        super().__init__(to, name)
        self.value = value

    @property
    def operands(self) -> List[Value]:
        return [self.value]


# -- arithmetic / control ------------------------------------------------------

class BinOp(Instruction):
    """Two-operand arithmetic (``add``/``sub``/``mul``/``div``/shifts...)."""

    opname = "binop"

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = "") -> None:
        super().__init__(lhs.type, name)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    @property
    def operands(self) -> List[Value]:
        return [self.lhs, self.rhs]


class Cmp(Instruction):
    """Comparison producing 0/1 (``eq``/``ne``/``lt``/``le``/``gt``/``ge``)."""

    opname = "cmp"

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = "") -> None:
        super().__init__(I64, name)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    @property
    def operands(self) -> List[Value]:
        return [self.lhs, self.rhs]


class Select(Instruction):
    """``cond ? if_true : if_false``."""

    opname = "select"

    def __init__(self, cond: Value, if_true: Value, if_false: Value, name: str = "") -> None:
        super().__init__(if_true.type, name)
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false

    @property
    def operands(self) -> List[Value]:
        return [self.cond, self.if_true, self.if_false]


class Phi(Instruction):
    """SSA φ-node merging values from predecessor blocks."""

    opname = "phi"

    def __init__(self, type_: Type, name: str = "") -> None:
        super().__init__(type_, name)
        self.incoming: List[Tuple[Value, "BasicBlock"]] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self.incoming.append((value, block))

    @property
    def operands(self) -> List[Value]:
        return [value for value, _ in self.incoming]

    def replace_operand(self, old: Value, new: Value) -> None:
        self.incoming = [(new if value is old else value, block)
                         for value, block in self.incoming]


class Br(Instruction):
    """Unconditional branch."""

    opname = "br"
    is_terminator = True

    def __init__(self, target: "BasicBlock") -> None:
        super().__init__(VOID)
        self.target = target

    @property
    def successors(self) -> List["BasicBlock"]:
        return [self.target]


class CondBr(Instruction):
    """Conditional branch on a non-zero condition."""

    opname = "condbr"
    is_terminator = True

    def __init__(self, cond: Value, if_true: "BasicBlock", if_false: "BasicBlock") -> None:
        super().__init__(VOID)
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false

    @property
    def operands(self) -> List[Value]:
        return [self.cond]

    @property
    def successors(self) -> List["BasicBlock"]:
        return [self.if_true, self.if_false]


class Ret(Instruction):
    """Return from the function (a *backward-edge* transition)."""

    opname = "ret"
    is_terminator = True

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__(VOID)
        self.value = value

    @property
    def operands(self) -> List[Value]:
        return [self.value] if self.value is not None else []

    @property
    def successors(self) -> List["BasicBlock"]:
        return []


# -- calls ----------------------------------------------------------------------

class Call(Instruction):
    """Direct call (a *direct forward edge*: statically-known target)."""

    opname = "call"

    def __init__(self, callee: "Function", args: Sequence[Value],
                 name: str = "", tail: bool = False) -> None:
        super().__init__(callee.signature.ret, name)
        self.callee = callee
        self.args = list(args)
        self.tail = tail

    @property
    def operands(self) -> List[Value]:
        return list(self.args)


class ICall(Instruction):
    """Indirect call through a function-pointer value (*indirect forward
    edge*); the control-flow transition CFI must protect."""

    opname = "icall"

    def __init__(self, target: Value, args: Sequence[Value],
                 signature: FunctionType, name: str = "") -> None:
        super().__init__(signature.ret, name)
        self.target = target
        self.args = list(args)
        self.signature = signature

    @property
    def operands(self) -> List[Value]:
        return [self.target] + list(self.args)


class RuntimeCall(Instruction):
    """A call into an instrumentation runtime (``hq_*``, ``ccfi_*``...).

    Inserted only by compiler passes; the interpreter dispatches it to
    the policy runtime registered for the execution.
    """

    opname = "rtcall"

    def __init__(self, runtime_name: str, args: Sequence[Value],
                 result_type: Type = VOID, name: str = "") -> None:
        super().__init__(result_type, name)
        self.runtime_name = runtime_name
        self.args = list(args)

    @property
    def operands(self) -> List[Value]:
        return list(self.args)


# -- libc-shaped intrinsics -------------------------------------------------------

class Malloc(Instruction):
    """Heap allocation of ``size`` bytes."""

    opname = "malloc"

    def __init__(self, size: Value, name: str = "") -> None:
        super().__init__(ptr(I64), name)
        self.size = size

    @property
    def operands(self) -> List[Value]:
        return [self.size]


class Free(Instruction):
    """Heap deallocation."""

    opname = "free"

    def __init__(self, pointer: Value) -> None:
        super().__init__(VOID)
        self.pointer = pointer

    @property
    def operands(self) -> List[Value]:
        return [self.pointer]


class Realloc(Instruction):
    """Heap reallocation; may move the block."""

    opname = "realloc"

    def __init__(self, pointer: Value, size: Value, name: str = "") -> None:
        super().__init__(ptr(I64), name)
        self.pointer = pointer
        self.size = size

    @property
    def operands(self) -> List[Value]:
        return [self.pointer, self.size]


class MemCopy(Instruction):
    """``memcpy``/``memmove`` over ``size`` bytes.

    ``element_type`` is the static composite type being copied when the
    front-end knows it — the input to the strict subtype check of the
    final-lowering pass.  ``decayed`` marks the four-benchmark pattern
    where a composite containing function pointers was passed
    inter-procedurally as a raw byte pointer (section 4.1.4), defeating
    the static check.
    """

    opname = "memcopy"

    def __init__(self, dst: Value, src: Value, size: Value,
                 move: bool = False, element_type: Optional[Type] = None,
                 decayed: bool = False) -> None:
        super().__init__(VOID)
        self.dst = dst
        self.src = src
        self.size = size
        self.move = move
        self.element_type = element_type
        self.decayed = decayed

    @property
    def operands(self) -> List[Value]:
        return [self.dst, self.src, self.size]


class MemSet(Instruction):
    """``memset`` over ``size`` bytes."""

    opname = "memset"

    def __init__(self, dst: Value, value: Value, size: Value) -> None:
        super().__init__(VOID)
        self.dst = dst
        self.value = value
        self.size = size

    @property
    def operands(self) -> List[Value]:
        return [self.dst, self.value, self.size]


class Syscall(Instruction):
    """A system-call instruction (inline ``syscall``/``int 0x80`` asm or a
    musl wrapper); the point where bounded asynchronous validation
    synchronizes (section 2.2)."""

    opname = "syscall"

    def __init__(self, number: int, args: Sequence[Value] = (), name: str = "") -> None:
        super().__init__(I64, name)
        self.number = number
        self.args = list(args)

    @property
    def operands(self) -> List[Value]:
        return list(self.args)


class Setjmp(Instruction):
    """``setjmp``: stores a control-flow pointer inside ``jmp_buf``."""

    opname = "setjmp"

    def __init__(self, buf: Value, name: str = "") -> None:
        super().__init__(I64, name)
        self.buf = buf

    @property
    def operands(self) -> List[Value]:
        return [self.buf]


class Longjmp(Instruction):
    """``longjmp``: non-local goto through the ``jmp_buf`` pointer."""

    opname = "longjmp"
    is_terminator = True

    def __init__(self, buf: Value, value: Value) -> None:
        super().__init__(VOID)
        self.buf = buf
        self.value = value

    @property
    def operands(self) -> List[Value]:
        return [self.buf, self.value]

    @property
    def successors(self) -> List["BasicBlock"]:
        return []


# -- containers --------------------------------------------------------------------

class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, function: "Function", name: str) -> None:
        self.function = function
        self.name = name
        self.instructions: List[Instruction] = []

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return list(getattr(term, "successors", [])) if term else []

    def append(self, instruction: Instruction) -> Instruction:
        if self.terminator is not None:
            raise ValueError(f"block {self.name} already terminated")
        instruction.block = self
        self.instructions.append(instruction)
        return instruction

    def insert(self, index: int, instruction: Instruction) -> Instruction:
        instruction.block = self
        self.instructions.insert(index, instruction)
        return instruction

    def insert_before(self, anchor: Instruction, instruction: Instruction) -> Instruction:
        return self.insert(self.instructions.index(anchor), instruction)

    def insert_after(self, anchor: Instruction, instruction: Instruction) -> Instruction:
        return self.insert(self.instructions.index(anchor) + 1, instruction)

    def remove(self, instruction: Instruction) -> None:
        self.instructions.remove(instruction)
        instruction.block = None

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.function.name}:{self.name}>"


class Function:
    """A function definition (or declaration, if it has no blocks)."""

    def __init__(self, module: "Module", name: str, signature: FunctionType,
                 param_names: Optional[Sequence[str]] = None) -> None:
        self.module = module
        self.name = name
        self.signature = signature
        names = list(param_names) if param_names else [
            f"arg{i}" for i in range(len(signature.params))]
        self.params = [Argument(self, i, t, n)
                       for i, (t, n) in enumerate(zip(signature.params, names))]
        self.blocks: List[BasicBlock] = []
        #: Attributes the backward-edge pass consults (section 4.1.6).
        self.returns_twice = False
        self.no_return = False
        #: True for functions belonging to an instrumented shared library
        #: (e.g. musl); used by library-compatibility experiments.
        self.from_library = False
        #: Explicitly address-taken (beyond uses visible in this module).
        self.address_taken = False

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no body")
        return self.blocks[0]

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    def add_block(self, name: str = "") -> BasicBlock:
        block = BasicBlock(self, name or f"bb{len(self.blocks)}")
        self.blocks.append(block)
        return block

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def value_numbering(self) -> Dict[str, int]:
        """Stable local-value numbering: parameters first, then every
        instruction name in block order.

        The numbering depends only on IR structure — never on object
        identities — so two interpreters lowering the same function
        assign identical register indices and emit identical VM code
        (:mod:`repro.sim.lower` relies on this).  Duplicate names map to
        one index, mirroring the frame-dict aliasing of the closure
        interpreter.
        """
        numbering: Dict[str, int] = {}
        for param in self.params:
            if param.name not in numbering:
                numbering[param.name] = len(numbering)
        for block in self.blocks:
            for instruction in block.instructions:
                if instruction.name not in numbering:
                    numbering[instruction.name] = len(numbering)
        return numbering

    def ref(self) -> FunctionRef:
        return FunctionRef(self)

    def __repr__(self) -> str:
        return f"<Function {self.name} {self.signature!r}>"


class Module:
    """A compilation unit: functions plus global variables."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        #: Names of functions on the block-op instrumentation allowlist
        #: (section 4.1.4: four benchmarks pass decayed function pointers
        #: inter-procedurally and need always-on block instrumentation).
        self.block_op_allowlist: set = set()

    def add_function(self, name: str, signature: FunctionType,
                     param_names: Optional[Sequence[str]] = None) -> Function:
        if name in self.functions:
            raise ValueError(f"duplicate function {name!r}")
        function = Function(self, name, signature, param_names)
        self.functions[name] = function
        return function

    def add_global(self, name: str, value_type: Type,
                   initializer: Optional[Sequence[Value]] = None,
                   const: bool = False) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"duplicate global {name!r}")
        variable = GlobalVariable(name, value_type, initializer, const)
        self.globals[name] = variable
        return variable

    def all_instructions(self) -> Iterator[Instruction]:
        for function in self.functions.values():
            yield from function.instructions()

    def verify(self) -> None:
        """Check structural invariants; raises ``ValueError`` on failure."""
        for function in self.functions.values():
            for block in function.blocks:
                if block.terminator is None:
                    raise ValueError(
                        f"{function.name}:{block.name} lacks a terminator")
                for instruction in block.instructions[:-1]:
                    if instruction.is_terminator:
                        raise ValueError(
                            f"{function.name}:{block.name} has a terminator "
                            f"{instruction.opname} before the block end")
